"""Determinism lint rules.

The paper's rate-0 guarantee — and every bit-identity test in this repo
— assumes the pipeline is a deterministic function of (inputs, seed).
These AST rules flag the three classic ways Python code silently breaks
that:

``unseeded-random``
    Calls into the stdlib ``random`` module's *global* generator (or an
    unseeded ``random.Random()``).  All randomness must flow through an
    explicitly seeded generator.

``numpy-legacy-random``
    Calls into NumPy's legacy global RNG (``np.random.rand``,
    ``np.random.seed``, ...).  Use ``np.random.default_rng(seed)`` or a
    keyed ``SeedSequence`` (see ``repro.faults.injector``).

``unseeded-default-rng``
    ``np.random.default_rng()`` with no seed — fresh OS entropy on
    every call.

``wall-clock``
    Direct clock reads (``time.time``, ``time.perf_counter``,
    ``datetime.now``, ...).  Benchmark code must go through the
    :mod:`repro.util.clock` shim (one audited access point); *model and
    simulator* code (``model/``, ``simulate/``) must not read clocks at
    all — simulated time is a model output, never a host measurement —
    so there even the shim is flagged.

``unordered-iteration``
    ``for``-loops, comprehensions, or ``sum()`` over a ``set`` /
    ``frozenset``.  Set iteration order depends on insertion history
    and hash seeding; when it feeds floating-point accumulation or
    schedule construction, runs stop being reproducible.  Wrap the set
    in ``sorted(...)`` or suppress with a pragma if order provably
    cannot matter.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterable, List, Set, Tuple

from repro.analysis.core import Finding, Rule, register

#: Stdlib ``random`` module-level functions backed by the global RNG.
RANDOM_MODULE_FNS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "uniform",
        "choice",
        "choices",
        "sample",
        "shuffle",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "expovariate",
        "betavariate",
        "gammavariate",
        "triangular",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
        "getrandbits",
        "randbytes",
        "seed",
    }
)

#: NumPy legacy global-RNG functions (np.random.<fn>).
NUMPY_LEGACY_FNS = frozenset(
    {
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "random_integers",
        "ranf",
        "sample",
        "choice",
        "shuffle",
        "permutation",
        "seed",
        "get_state",
        "set_state",
        "standard_normal",
        "standard_cauchy",
        "standard_exponential",
        "uniform",
        "normal",
        "binomial",
        "poisson",
        "exponential",
        "beta",
        "gamma",
        "bytes",
    }
)

#: ``time`` module clock functions.
TIME_FNS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "clock",
    }
)

#: ``datetime.datetime`` constructors that read the host clock.
DATETIME_FNS = frozenset({"now", "utcnow", "today"})

#: Path fragments of *pure* model/simulator code where even the
#: audited clock shim is disallowed.
CLOCK_FREE_DIRS = ("model", "simulate")


class _ImportMap:
    """Aliases under which the interesting modules/names are visible."""

    def __init__(self, tree: ast.AST) -> None:
        self.random_aliases: Set[str] = set()
        self.numpy_aliases: Set[str] = set()
        self.numpy_random_aliases: Set[str] = set()  # from numpy import random
        self.time_aliases: Set[str] = set()
        self.datetime_mod_aliases: Set[str] = set()  # import datetime
        self.datetime_cls_aliases: Set[str] = set()  # from datetime import datetime
        self.clock_shim_aliases: Set[str] = set()  # from repro.util import clock
        # Bare names from from-imports: local name -> (module, original).
        self.from_names: Dict[str, Tuple[str, str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    if alias.name == "random":
                        self.random_aliases.add(local)
                    elif alias.name == "numpy":
                        self.numpy_aliases.add(local)
                    elif alias.name == "numpy.random" and alias.asname:
                        self.numpy_random_aliases.add(local)
                    elif alias.name == "time":
                        self.time_aliases.add(local)
                    elif alias.name == "datetime":
                        self.datetime_mod_aliases.add(local)
                    elif alias.name == "repro.util.clock" and alias.asname:
                        self.clock_shim_aliases.add(local)
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    local = alias.asname or alias.name
                    if node.module == "numpy" and alias.name == "random":
                        self.numpy_random_aliases.add(local)
                    elif node.module == "datetime" and alias.name == "datetime":
                        self.datetime_cls_aliases.add(local)
                    elif node.module == "repro.util" and alias.name == "clock":
                        self.clock_shim_aliases.add(local)
                    else:
                        self.from_names[local] = (node.module, alias.name)


def _call_name(node: ast.Call) -> Tuple[str, ...]:
    """Dotted name of the called object, innermost first (may be empty)."""
    parts: List[str] = []
    func = node.func
    while isinstance(func, ast.Attribute):
        parts.append(func.attr)
        func = func.value
    if isinstance(func, ast.Name):
        parts.append(func.id)
    else:
        return ()
    return tuple(reversed(parts))


def _finding(rule: str, path: str, node: ast.AST, message: str) -> Finding:
    return Finding(
        rule=rule,
        path=path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        message=message,
    )


@register
class UnseededRandomRule(Rule):
    name = "unseeded-random"
    description = (
        "stdlib `random` global-RNG call; use an explicitly seeded generator"
    )

    def check_python(self, path, source, tree):
        imports = _ImportMap(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _call_name(node)
            if not dotted:
                continue
            # random.shuffle(...), r.random(), ...
            if (
                len(dotted) == 2
                and dotted[0] in imports.random_aliases
                and dotted[1] in RANDOM_MODULE_FNS
            ):
                yield _finding(
                    self.name,
                    path,
                    node,
                    f"call to global-RNG `random.{dotted[1]}`; seed a "
                    "`random.Random(seed)` (or use numpy's default_rng)",
                )
            # random.Random() / random.SystemRandom()
            elif (
                len(dotted) == 2
                and dotted[0] in imports.random_aliases
                and dotted[1] in ("Random", "SystemRandom")
            ):
                if dotted[1] == "SystemRandom":
                    yield _finding(
                        self.name,
                        path,
                        node,
                        "`random.SystemRandom` draws OS entropy and can "
                        "never be seeded",
                    )
                elif not node.args and not node.keywords:
                    yield _finding(
                        self.name,
                        path,
                        node,
                        "`random.Random()` without a seed; pass one",
                    )
            # from random import shuffle; shuffle(...)
            elif len(dotted) == 1:
                origin = imports.from_names.get(dotted[0])
                if origin == ("random", dotted[0]) or (
                    origin is not None
                    and origin[0] == "random"
                    and origin[1] in RANDOM_MODULE_FNS
                ):
                    yield _finding(
                        self.name,
                        path,
                        node,
                        f"call to global-RNG `random.{origin[1]}` "
                        f"(imported as `{dotted[0]}`)",
                    )


@register
class NumpyLegacyRandomRule(Rule):
    name = "numpy-legacy-random"
    description = (
        "NumPy legacy global-RNG call; use np.random.default_rng(seed)"
    )

    def check_python(self, path, source, tree):
        imports = _ImportMap(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _call_name(node)
            if (
                len(dotted) == 3
                and dotted[0] in imports.numpy_aliases
                and dotted[1] == "random"
                and dotted[2] in NUMPY_LEGACY_FNS
            ) or (
                len(dotted) == 2
                and dotted[0] in imports.numpy_random_aliases
                and dotted[1] in NUMPY_LEGACY_FNS
            ):
                fn = dotted[-1]
                yield _finding(
                    self.name,
                    path,
                    node,
                    f"legacy global-RNG `np.random.{fn}`; draw from "
                    "`np.random.default_rng(seed)` instead",
                )
            elif len(dotted) == 1:
                origin = imports.from_names.get(dotted[0])
                if (
                    origin is not None
                    and origin[0] in ("numpy.random",)
                    and origin[1] in NUMPY_LEGACY_FNS
                ):
                    yield _finding(
                        self.name,
                        path,
                        node,
                        f"legacy global-RNG `numpy.random.{origin[1]}` "
                        f"(imported as `{dotted[0]}`)",
                    )


@register
class UnseededDefaultRngRule(Rule):
    name = "unseeded-default-rng"
    description = "np.random.default_rng() with no seed (fresh OS entropy)"

    def check_python(self, path, source, tree):
        imports = _ImportMap(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call) or node.args or node.keywords:
                continue
            dotted = _call_name(node)
            unseeded = (
                len(dotted) == 3
                and dotted[0] in imports.numpy_aliases
                and dotted[1] == "random"
                and dotted[2] == "default_rng"
            )
            unseeded = unseeded or (
                len(dotted) == 2
                and dotted[0] in imports.numpy_random_aliases
                and dotted[1] == "default_rng"
            )
            unseeded = unseeded or (
                len(dotted) == 1
                and imports.from_names.get(dotted[0])
                in (("numpy.random", "default_rng"),)
            )
            if unseeded:
                yield _finding(
                    self.name,
                    path,
                    node,
                    "`default_rng()` without a seed draws fresh OS entropy; "
                    "pass an explicit seed",
                )


@register
class WallClockRule(Rule):
    name = "wall-clock"
    description = (
        "direct clock read; use repro.util.clock (forbidden entirely in "
        "model/ and simulate/)"
    )

    @staticmethod
    def _is_clock_free(path: str) -> bool:
        parts = os.path.normpath(path).split(os.sep)
        return any(part in CLOCK_FREE_DIRS for part in parts)

    def check_python(self, path, source, tree):
        imports = _ImportMap(tree)
        clock_free = self._is_clock_free(path)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _call_name(node)
            if not dotted:
                continue
            # time.perf_counter(), t.time(), ...
            if (
                len(dotted) == 2
                and dotted[0] in imports.time_aliases
                and dotted[1] in TIME_FNS
            ):
                yield _finding(
                    self.name,
                    path,
                    node,
                    f"direct `time.{dotted[1]}()` read; route timing "
                    "through `repro.util.clock`",
                )
            # datetime.datetime.now() / datetime.now()
            elif (
                len(dotted) == 3
                and dotted[0] in imports.datetime_mod_aliases
                and dotted[1] == "datetime"
                and dotted[2] in DATETIME_FNS
            ) or (
                len(dotted) == 2
                and dotted[0] in imports.datetime_cls_aliases
                and dotted[1] in DATETIME_FNS
            ):
                yield _finding(
                    self.name,
                    path,
                    node,
                    f"`datetime.{dotted[-1]}()` reads the host clock",
                )
            # from time import perf_counter; perf_counter()
            elif len(dotted) == 1:
                origin = imports.from_names.get(dotted[0])
                if origin is not None and origin[0] == "time" and origin[1] in TIME_FNS:
                    yield _finding(
                        self.name,
                        path,
                        node,
                        f"direct `time.{origin[1]}()` read (imported as "
                        f"`{dotted[0]}`); route timing through "
                        "`repro.util.clock`",
                    )
                elif clock_free and origin is not None and origin[0] == "repro.util.clock":
                    yield _finding(
                        self.name,
                        path,
                        node,
                        "model/simulator code must be clock-free: simulated "
                        "time is a model output, not a host measurement",
                    )
            # clock.now() in model/simulate
            elif (
                clock_free
                and len(dotted) == 2
                and dotted[0] in imports.clock_shim_aliases
            ):
                yield _finding(
                    self.name,
                    path,
                    node,
                    "model/simulator code must be clock-free: simulated "
                    "time is a model output, not a host measurement",
                )


class _SetScope:
    """Names bound to set-typed values within one lexical scope."""

    def __init__(self) -> None:
        self.names: Set[str] = set()


class _SetIterVisitor(ast.NodeVisitor):
    """Finds iteration over statically set-typed expressions."""

    #: ``sorted`` (and order-independent reducers) neutralize set order.
    _ORDER_SAFE_WRAPPERS = frozenset({"sorted", "len", "min", "max", "any", "all"})

    def __init__(self, rule: "UnorderedIterationRule", path: str) -> None:
        self.rule = rule
        self.path = path
        self.findings: List[Finding] = []
        self.scopes: List[_SetScope] = [_SetScope()]

    # -- set-typedness inference ------------------------------------------

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return any(node.id in scope.names for scope in reversed(self.scopes))
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if isinstance(func, ast.Attribute) and func.attr in (
                "union",
                "intersection",
                "difference",
                "symmetric_difference",
                "copy",
            ):
                return self._is_set_expr(func.value)
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        return False

    def _flag(self, node: ast.AST, context: str) -> None:
        self.findings.append(
            _finding(
                self.rule.name,
                self.path,
                node,
                f"{context} iterates a set in nondeterministic order; wrap "
                "in sorted(...) or pragma-suppress if order cannot matter",
            )
        )

    # -- scope management --------------------------------------------------

    def _visit_scoped(self, node: ast.AST) -> None:
        self.scopes.append(_SetScope())
        self.generic_visit(node)
        self.scopes.pop()

    visit_FunctionDef = _visit_scoped
    visit_AsyncFunctionDef = _visit_scoped
    visit_Lambda = _visit_scoped
    visit_ClassDef = _visit_scoped

    # -- binding tracking --------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._is_set_expr(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.scopes[-1].names.add(target.id)
        else:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.scopes[-1].names.discard(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if (
            node.value is not None
            and isinstance(node.target, ast.Name)
            and self._is_set_expr(node.value)
        ):
            self.scopes[-1].names.add(node.target.id)
        self.generic_visit(node)

    # -- iteration contexts ------------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        if self._is_set_expr(node.iter):
            self._flag(node.iter, "for-loop")
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST) -> None:
        for gen in node.generators:
            if self._is_set_expr(gen.iter):
                self._flag(gen.iter, "comprehension")
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
    visit_DictComp = _visit_comprehension

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id == "sum"
            and node.args
            and self._is_set_expr(node.args[0])
        ):
            self._flag(node.args[0], "sum()")
        self.generic_visit(node)


@register
class UnorderedIterationRule(Rule):
    name = "unordered-iteration"
    description = (
        "iteration over a set feeds downstream order-dependent computation"
    )

    def check_python(self, path, source, tree):
        visitor = _SetIterVisitor(self, path)
        visitor.visit(tree)
        return visitor.findings
