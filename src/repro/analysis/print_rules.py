"""Output-hygiene lint rules.

``no-print``
    Bare ``print(...)`` calls in library code.  Library modules must
    report through return values, logging sinks, or the telemetry
    registry (:mod:`repro.telemetry.registry`) so that benchmark and
    pipeline output stays machine-parseable and byte-stable; stray
    prints interleave with rendered tables and corrupt golden output.
    Presentation layers are exempt: CLI entry-point modules
    (``cli.py``), the table generators (anything under ``tables/``),
    dedicated renderers (modules named ``render*.py``), and runnable
    demo scripts (anything under ``examples/``).
"""

from __future__ import annotations

import ast
import os

from repro.analysis.core import Finding, Rule, register


def _exempt(path: str) -> bool:
    """True for presentation-layer modules allowed to print."""
    norm = os.path.normpath(path)
    base = os.path.basename(norm)
    if base == "cli.py" or base.startswith("render"):
        return True
    parts = norm.split(os.sep)
    return "tables" in parts[:-1] or "examples" in parts[:-1]


@register
class NoPrintRule(Rule):
    name = "no-print"
    description = (
        "bare print() in library code; return data or use the "
        "telemetry registry (CLI / tables / render* / examples exempt)"
    )

    def check_python(self, path, source, tree):
        if _exempt(path):
            return
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield Finding(
                    rule=self.name,
                    path=path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        "print() in library code; return the value, "
                        "record it on the telemetry registry, or move "
                        "the formatting into a CLI/render module"
                    ),
                )
