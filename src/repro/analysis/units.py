"""Dimensional-consistency lint for the performance-model code.

Equations (1) and (2) mix quantities of four base dimensions — times
(``T_f``, ``T_l``, ``T_w``, ``T_c`` in *seconds*), volumes (``C_max``
in *words*), counts (``B_max`` in *blocks*), and work (``F`` in
*flops*) — and the classic reproduction bug is adding across them
(e.g. adding a block latency to a bandwidth, or nanoseconds to
seconds).  NumPy will not complain; this rule does.

The pass is deliberately *leaf-level*: a dimension is inferred only
for a bare name or attribute whose (case-insensitive) terminal segment
is in the catalog below, propagated through unary minus and
subscripting.  An ``a + b`` or ``a - b`` whose two sides infer to
*different* dimensions is flagged; anything involving a computed
subexpression (calls, products, ratios) is left alone, so the rule has
essentially no false-positive surface — at the cost of only catching
the direct form of the mistake.

Catalog (terminal name -> dimension):

========================  =================
``tf tl tw tc t_comp ...``  seconds
``tf_ns``                   nanoseconds
``c_max words ...``         words
``b_max blocks ...``        blocks
``flops boundary_flops``    flops
``mflops``                  flops/second
``bandwidth *_bytes``       bytes/second
========================  =================
"""

from __future__ import annotations

import ast
from typing import Dict, Optional

from repro.analysis.core import Finding, Rule, register

#: Terminal identifier (lowercased) -> dimension label.
NAME_DIMS: Dict[str, str] = {}


def _catalog(dim: str, *names: str) -> None:
    for name in names:
        NAME_DIMS[name] = dim


_catalog(
    "seconds",
    "tf",
    "tl",
    "tw",
    "tc",
    "t_f",
    "t_l",
    "t_w",
    "t_c",
    "t_comp",
    "t_comm",
    "t_smvp",
    "half_tl",
    "half_tw",
    "dt",
    "elapsed",
    "seconds",
    "seconds_total",
    "seconds_octree",
    "seconds_mesh",
    "seconds_per_smvp",
    "seconds_per_product",
    "duration",
    "period",
    "timeout",
)
_catalog("nanoseconds", "tf_ns", "tl_ns", "tw_ns", "tc_ns")
_catalog(
    "words", "words", "c_max", "c_i", "total_words", "bisection_words"
)
_catalog("blocks", "blocks", "b_max", "b_i", "total_blocks")
_catalog("flops", "flops", "boundary_flops")
_catalog("flops/second", "mflops")
_catalog(
    "bytes/second",
    "bandwidth",
    "burst_bandwidth_bytes",
    "sustained_bandwidth_bytes",
    "bytes_per_s",
    "bytes_per_second",
)


def leaf_dimension(node: ast.AST) -> Optional[str]:
    """Dimension of a leaf expression, or ``None`` when not inferable."""
    if isinstance(node, ast.Name):
        return NAME_DIMS.get(node.id.lower())
    if isinstance(node, ast.Attribute):
        return NAME_DIMS.get(node.attr.lower())
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd)
    ):
        return leaf_dimension(node.operand)
    if isinstance(node, ast.Subscript):
        return leaf_dimension(node.value)
    return None


@register
class UnitMismatchRule(Rule):
    name = "unit-mismatch"
    description = (
        "adds/subtracts model quantities of different dimensions "
        "(e.g. a latency and a bandwidth)"
    )

    def check_python(self, path, source, tree):
        for node in ast.walk(tree):
            if not isinstance(node, ast.BinOp):
                continue
            if not isinstance(node.op, (ast.Add, ast.Sub)):
                continue
            left = leaf_dimension(node.left)
            right = leaf_dimension(node.right)
            if left is not None and right is not None and left != right:
                verb = "add" if isinstance(node.op, ast.Add) else "subtract"
                yield Finding(
                    rule=self.name,
                    path=path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"cannot {verb} {left} and {right}: Eq. (1)/(2) "
                        "quantities only combine through products/ratios "
                        "(convert units explicitly first)"
                    ),
                )
