"""The ``repro-lint`` engine: findings, the rule registry, file walking.

A *rule* inspects one file and yields :class:`Finding` objects.  Python
sources are parsed once and handed to every AST rule; golden-schedule
JSON files (``*schedule*.json``) go to the data rules.  Findings on
lines carrying a ``# repro-lint: ignore[...]`` pragma are dropped (see
:mod:`repro.analysis.pragmas`).

The engine is deliberately dependency-free (stdlib ``ast`` + ``json``)
so the lint job can run before the scientific stack is even importable.
"""

from __future__ import annotations

import ast
import json
import os
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis import pragmas


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


class Rule:
    """Base class for lint rules.

    Subclasses set ``name``/``description`` and override either
    :meth:`check_python` (AST rules) or :meth:`check_data` (golden
    schedule files).
    """

    name = "abstract"
    description = ""

    def check_python(
        self, path: str, source: str, tree: ast.AST
    ) -> Iterable[Finding]:
        return ()

    def check_data(self, path: str, payload: object) -> Iterable[Finding]:
        return ()


#: Registry, in reporting order.  Populated by ``register``.
ALL_RULES: Dict[str, Rule] = {}


def register(rule_cls):
    """Class decorator adding a rule to :data:`ALL_RULES`."""
    if rule_cls.name in ALL_RULES:
        raise ValueError(f"duplicate rule name {rule_cls.name!r}")
    ALL_RULES[rule_cls.name] = rule_cls()
    return rule_cls


def _ensure_rules_loaded() -> None:
    """Import the rule modules (registration happens on import)."""
    from repro.analysis import (  # noqa: F401
        api_rules,
        determinism,
        exception_rules,
        ownership,
        print_rules,
        schedule_check,
        units,
    )


def iter_target_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into the lintable file list.

    Directories are walked recursively for ``.py`` files and
    ``*schedule*.json`` golden files; explicit file arguments are taken
    as-is.  Hidden directories, ``__pycache__``, and ``lint_fixtures``
    directories (deliberate-violation corpora — lintable only when
    named as the walk root) are skipped.
    """
    out: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            out.append(path)
            continue
        if not os.path.isdir(path):
            raise FileNotFoundError(f"no such file or directory: {path}")
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d
                for d in dirnames
                if not d.startswith(".")
                and d != "__pycache__"
                and d != "lint_fixtures"
            )
            for name in sorted(filenames):
                if name.endswith(".py") or (
                    name.endswith(".json") and "schedule" in name
                ):
                    out.append(os.path.join(dirpath, name))
    return out


def lint_file(
    path: str, rules: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Run the (selected) rules over one file."""
    _ensure_rules_loaded()
    active = [
        rule
        for name, rule in ALL_RULES.items()
        if rules is None or name in rules
    ]
    findings: List[Finding] = []
    if path.endswith(".json"):
        with open(path, "r", encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except json.JSONDecodeError as exc:
                return [
                    Finding(
                        rule="schedule-invariant",
                        path=path,
                        line=exc.lineno,
                        col=exc.colno,
                        message=f"unparseable schedule file: {exc.msg}",
                    )
                ]
        for rule in active:
            findings.extend(rule.check_data(path, payload))
        return findings

    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    lines = source.splitlines()
    if pragmas.file_skipped(lines):
        return []
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule="syntax-error",
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                message=f"cannot parse: {exc.msg}",
            )
        ]
    for rule in active:
        for finding in rule.check_python(path, source, tree):
            if not pragmas.suppressed(lines, finding.rule, finding.line):
                findings.append(finding)
    return findings


def lint_paths(
    paths: Sequence[str], rules: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Lint every target file under ``paths``; findings sorted by location."""
    _ensure_rules_loaded()
    if rules is not None:
        unknown = sorted(set(rules) - set(ALL_RULES))
        if unknown:
            raise ValueError(
                f"unknown rules {unknown}; available: {sorted(ALL_RULES)}"
            )
    findings: List[Finding] = []
    for path in iter_target_files(paths):
        findings.extend(lint_file(path, rules))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def pragma_report(paths: Sequence[str]) -> Dict[str, object]:
    """Count ``# repro-lint: ignore`` pragmas under ``paths``.

    The *pragma budget*: every suppression is an intentional exception
    and the CI lint job prints this tally so growth is visible in
    review.  Returns ``{"total", "by_rule", "by_file", "skip_files"}``
    (a bare ``ignore`` counts under ``"*"``).
    """
    by_rule: Dict[str, int] = {}
    by_file: Dict[str, int] = {}
    skip_files: List[str] = []
    for path in iter_target_files(paths):
        if path.endswith(".json"):
            continue
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        if pragmas.file_skipped(lines):
            skip_files.append(path)
            continue
        for line in lines:
            rules = pragmas.parse_line_pragma(line)
            if rules is None:
                continue
            by_file[path] = by_file.get(path, 0) + 1
            for rule in sorted(rules):
                by_rule[rule] = by_rule.get(rule, 0) + 1
    return {
        "total": sum(by_file.values()),
        "by_rule": dict(sorted(by_rule.items())),
        "by_file": dict(sorted(by_file.items())),
        "skip_files": sorted(skip_files),
    }


def render_pragma_report(report: Dict[str, object]) -> str:
    """Human-readable pragma-budget tally for the CI lint job."""
    lines = [f"pragma budget: {report['total']} suppression(s)"]
    for rule, count in report["by_rule"].items():  # type: ignore[union-attr]
        lines.append(f"  rule {rule}: {count}")
    for path, count in report["by_file"].items():  # type: ignore[union-attr]
        lines.append(f"  {path}: {count}")
    for path in report["skip_files"]:  # type: ignore[union-attr]
        lines.append(f"  skip-file: {path}")
    return "\n".join(lines) + "\n"


def render_text(findings: Sequence[Finding]) -> str:
    """Human-readable report, one finding per line plus a summary."""
    lines = [finding.format() for finding in findings]
    lines.append(
        f"repro-lint: {len(findings)} finding(s)"
        if findings
        else "repro-lint: clean"
    )
    return "\n".join(lines) + "\n"


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-readable report (``--json``): stable schema for tooling."""
    return json.dumps(
        {
            "version": 1,
            "count": len(findings),
            "findings": [asdict(finding) for finding in findings],
        },
        indent=2,
        sort_keys=True,
    )
