"""Opt-in runtime contracts (``REPRO_CONTRACTS=1``).

The static linter proves properties of the *code*; these contracts
check the same invariants on the *data* actually flowing through a
run.  They are wired into the hot construction paths —
``smvp/distribution.py`` (partition cover), ``smvp/executor.py``
(CSR structure + exchange schedule), ``simulate/bsp.py`` (exchange
schedule) — and cost nothing unless the ``REPRO_CONTRACTS``
environment variable is ``1``, so production runs and the default test
suite are unaffected.  CI runs the tier-1 suite once with contracts on.

A violated contract raises :class:`ContractViolation` with every
broken invariant listed, rather than letting a silently asymmetric
schedule or corrupted CSR produce plausible-but-wrong numbers.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.analysis.schedule_check import check_schedule


class ContractViolation(RuntimeError):
    """A runtime contract failed under ``REPRO_CONTRACTS=1``."""


def contracts_enabled() -> bool:
    """Whether runtime contract checking is switched on."""
    return os.environ.get("REPRO_CONTRACTS", "") == "1"


def check_schedule_contract(schedule, distribution=None) -> None:
    """BSP-invariant contract: symmetry, deadlock-freedom, coverage.

    No-op unless contracts are enabled.  ``distribution`` (when
    available) additionally enables the shared-node coverage check.
    """
    if not contracts_enabled():
        return
    report = check_schedule(schedule, distribution)
    if not report.ok:
        raise ContractViolation(
            f"exchange-schedule contract failed: {report.summary()}"
        )


def check_csr_contract(matrix, context: str = "sparse matrix") -> None:
    """Structural contract for CSR/BSR matrices feeding the SMVP.

    Checks the index arrays (monotone ``indptr`` starting at 0 and
    ending at ``nnz``-blocks, column indices in range) and that the
    values are finite — a corrupted local stiffness matrix is the
    classic way a distributed product goes quietly wrong.
    """
    if not contracts_enabled():
        return
    import numpy as np

    problems = []
    indptr = getattr(matrix, "indptr", None)
    indices = getattr(matrix, "indices", None)
    if indptr is None or indices is None:
        problems.append("matrix has no CSR/BSR index structure")
    else:
        if len(indptr) == 0 or indptr[0] != 0:
            problems.append("indptr does not start at 0")
        if np.any(np.diff(indptr) < 0):
            problems.append("indptr is not non-decreasing")
        if len(indptr) and indptr[-1] != len(indices):
            problems.append(
                f"indptr[-1]={indptr[-1]} but {len(indices)} stored "
                "column indices"
            )
        if hasattr(matrix, "blocksize"):
            col_bound = matrix.shape[1] // matrix.blocksize[1]
        else:
            col_bound = matrix.shape[1]
        if len(indices) and (indices.min() < 0 or indices.max() >= col_bound):
            problems.append(
                f"column indices outside [0, {col_bound})"
            )
    data = getattr(matrix, "data", None)
    if data is not None and not np.all(np.isfinite(data)):
        problems.append("matrix values contain NaN/Inf")
    if problems:
        raise ContractViolation(
            f"CSR contract failed for {context}: " + "; ".join(problems)
        )


def check_partition_cover_contract(partition, mesh) -> None:
    """Partition-cover contract: the element->PE map is a true cover.

    Every element must be assigned exactly one valid PE, and (whenever
    there are at least as many elements as PEs) no PE may be empty —
    an empty PE silently drops out of the exchange and skews every
    per-PE maximum the model consumes.
    """
    if not contracts_enabled():
        return
    import numpy as np

    problems = []
    parts = np.asarray(partition.parts)
    if parts.shape != (mesh.num_elements,):
        problems.append(
            f"partition covers {parts.shape[0] if parts.ndim else 0} "
            f"elements, mesh has {mesh.num_elements}"
        )
    elif parts.size:
        if parts.min() < 0 or parts.max() >= partition.num_parts:
            problems.append(
                f"part indices outside [0, {partition.num_parts})"
            )
        else:
            sizes = np.bincount(parts, minlength=partition.num_parts)
            empties = np.flatnonzero(sizes == 0)
            if len(empties) and mesh.num_elements >= partition.num_parts:
                problems.append(
                    f"PEs {empties.tolist()} own no elements"
                )
    if problems:
        raise ContractViolation(
            "partition-cover contract failed: " + "; ".join(problems)
        )
