"""Static checker for BSP exchange schedules.

The paper's Equations (1)/(2) and the β ≤ 2 bound (and PR 1's rate-0
bit-identity guarantee) all assume the exchange phase is a *symmetric
pairwise* bulk-synchronous schedule:

* **symmetry** — i sends to j exactly when j sends to i, with equal
  word counts (hence every ``C_i`` is even and divisible by 3);
* **deadlock-freedom** — the exchanges can be arranged into rounds in
  which every PE performs at most one blocking send/recv pair, with no
  cyclic waiting (``0→1, 1→2, 2→0`` in one round is the classic hang);
* **coverage** — every shared node is exchanged between *all* pairs of
  PEs it resides on, with the schedule's word counts matching
  ``WORDS_PER_NODE x |shared(i, j)|``.

This module verifies those properties for

1. any in-memory :class:`repro.smvp.schedule.CommSchedule` (duck-typed:
   ``num_parts``, ``messages``, ``exchange_rounds()``) — used by the
   ``REPRO_CONTRACTS=1`` runtime contracts;
2. golden-schedule JSON files (``*schedule*.json``), via the
   ``schedule-invariant`` lint rule.  Golden format::

       {"num_parts": 4,
        "messages": [[src, dst, words], ...],
        "rounds": [[[src, dst], ...], ...]}

   ``rounds`` entries are *directed* sends; a correct round carries
   both directions of every exchange.

The checker never imports ``repro.smvp`` (the contracts layer is
imported *by* it), so everything here works on plain ints and tuples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.core import Finding, Rule, register

#: Mirrors repro.smvp.schedule.WORDS_PER_NODE without importing it.
WORDS_PER_NODE = 3

#: A directed message: (src, dst, words).
DirectedMessage = Tuple[int, int, int]


@dataclass(frozen=True)
class ScheduleViolation:
    """One broken invariant."""

    kind: str  # asymmetry | deadlock | conflict | coverage | parity | malformed
    message: str

    def __str__(self) -> str:
        return f"{self.kind}: {self.message}"


@dataclass
class ScheduleReport:
    """Outcome of a full schedule check."""

    num_parts: int
    violations: List[ScheduleViolation]

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        if self.ok:
            return f"schedule ok ({self.num_parts} PEs)"
        body = "; ".join(str(v) for v in self.violations[:10])
        extra = len(self.violations) - 10
        if extra > 0:
            body += f"; ... and {extra} more"
        return f"schedule INVALID ({self.num_parts} PEs): {body}"


def _as_triples(messages: Iterable) -> List[DirectedMessage]:
    """Normalize Message objects / sequences to (src, dst, words)."""
    out = []
    for msg in messages:
        if hasattr(msg, "src"):
            out.append((int(msg.src), int(msg.dst), int(msg.words)))
        else:
            src, dst, words = msg
            out.append((int(src), int(dst), int(words)))
    return out


def check_messages(
    messages: Iterable, num_parts: int
) -> List[ScheduleViolation]:
    """Well-formedness and pairwise symmetry of the directed message set."""
    violations: List[ScheduleViolation] = []
    directed: Dict[Tuple[int, int], int] = {}
    for src, dst, words in _as_triples(messages):
        if src == dst:
            violations.append(
                ScheduleViolation(
                    "malformed", f"self-message on PE {src} ({words} words)"
                )
            )
            continue
        if not (0 <= src < num_parts and 0 <= dst < num_parts):
            violations.append(
                ScheduleViolation(
                    "malformed",
                    f"message {src}->{dst} outside the {num_parts}-PE range",
                )
            )
            continue
        if words <= 0:
            violations.append(
                ScheduleViolation(
                    "malformed", f"message {src}->{dst} carries {words} words"
                )
            )
        if (src, dst) in directed:
            violations.append(
                ScheduleViolation(
                    "malformed",
                    f"duplicate directed message {src}->{dst} (blocks must "
                    "be maximal: one message per neighbor per direction)",
                )
            )
            continue
        directed[(src, dst)] = words
    for (src, dst), words in sorted(directed.items()):
        back = directed.get((dst, src))
        if back is None:
            violations.append(
                ScheduleViolation(
                    "asymmetry",
                    f"{src} sends {words} words to {dst} but {dst} never "
                    f"sends to {src}",
                )
            )
        elif back != words and src < dst:
            violations.append(
                ScheduleViolation(
                    "asymmetry",
                    f"unequal exchange {src}<->{dst}: {words} vs {back} "
                    "words (shared-node lists must match)",
                )
            )
    return violations


def check_parity(messages: Iterable, num_parts: int) -> List[ScheduleViolation]:
    """The paper's Figure 7 invariants: every C_i even, divisible by 3."""
    words_per_pe = [0] * num_parts
    for src, dst, words in _as_triples(messages):
        if 0 <= src < num_parts and 0 <= dst < num_parts:
            words_per_pe[src] += words
            words_per_pe[dst] += words
    violations = []
    for pe, c_i in enumerate(words_per_pe):
        if c_i % 2 != 0:
            violations.append(
                ScheduleViolation(
                    "parity",
                    f"C_{pe} = {c_i} is odd (symmetric exchange makes every "
                    "C_i even)",
                )
            )
        elif c_i % WORDS_PER_NODE != 0:
            violations.append(
                ScheduleViolation(
                    "parity",
                    f"C_{pe} = {c_i} is not a multiple of "
                    f"{WORDS_PER_NODE} (three words per shared node)",
                )
            )
    return violations


def check_rounds(
    rounds: Sequence[Sequence[Tuple[int, int]]],
    num_parts: int,
    messages: Optional[Iterable] = None,
) -> List[ScheduleViolation]:
    """Round structure: matching property, per-round symmetry, deadlocks.

    Each round is a list of directed sends ``(src, dst)``.  A valid
    BSP round is a partial matching of PEs in which every send is
    matched by the reverse send (a blocking sendrecv completes).  An
    unmatched send stalls its sender; a *cycle* of unmatched sends
    (``0→1→2→0``) is a guaranteed deadlock and reported as such.

    With ``messages`` given, also checks that the rounds cover exactly
    the message set (every exchange scheduled once, nothing invented).
    """
    violations: List[ScheduleViolation] = []
    seen_pairs: Dict[Tuple[int, int], int] = {}
    for index, sends in enumerate(rounds):
        sends = [(int(s), int(d)) for s, d in sends]
        send_set = set(sends)
        outgoing: Dict[int, List[int]] = {}
        touched: Dict[int, int] = {}
        for src, dst in sends:
            if src == dst or not (
                0 <= src < num_parts and 0 <= dst < num_parts
            ):
                violations.append(
                    ScheduleViolation(
                        "malformed",
                        f"round {index}: invalid send {src}->{dst}",
                    )
                )
                continue
            outgoing.setdefault(src, []).append(dst)
            touched[src] = touched.get(src, 0)
            touched[dst] = touched.get(dst, 0)
            pair = (min(src, dst), max(src, dst))
            touched[src] += 1
            touched[dst] += 1
            if (dst, src) not in send_set:
                violations.append(
                    ScheduleViolation(
                        "asymmetry",
                        f"round {index}: {src} sends to {dst} but {dst} "
                        f"does not send to {src} in the same round",
                    )
                )
            if src < dst:
                prev = seen_pairs.get(pair)
                if prev is not None and (dst, src) in send_set:
                    violations.append(
                        ScheduleViolation(
                            "malformed",
                            f"pair {pair} scheduled in rounds {prev} and "
                            f"{index}",
                        )
                    )
                seen_pairs[pair] = index
        # Matching property: each PE in at most one exchange per round.
        for pe, count in sorted(touched.items()):
            if count > 2:  # a full exchange touches a PE twice (send+recv)
                violations.append(
                    ScheduleViolation(
                        "conflict",
                        f"round {index}: PE {pe} participates in "
                        f"{count} sends/receives; rounds must be pairwise "
                        "matchings",
                    )
                )
        # Deadlock: cycles among unmatched sends.
        unmatched = [
            (s, d) for (s, d) in sorted(send_set) if (d, s) not in send_set
        ]
        graph: Dict[int, List[int]] = {}
        for s, d in unmatched:
            graph.setdefault(s, []).append(d)
        state: Dict[int, int] = {}  # 0 unseen / 1 on stack / 2 done

        def _cycle_from(start: int) -> Optional[List[int]]:
            stack = [(start, iter(graph.get(start, ())))]
            path = [start]
            state[start] = 1
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    if state.get(nxt, 0) == 1:
                        return path[path.index(nxt) :] + [nxt]
                    if state.get(nxt, 0) == 0:
                        state[nxt] = 1
                        path.append(nxt)
                        stack.append((nxt, iter(graph.get(nxt, ()))))
                        advanced = True
                        break
                if not advanced:
                    state[node] = 2
                    path.pop()
                    stack.pop()
            return None

        for start in sorted(graph):
            if state.get(start, 0) == 0:
                cycle = _cycle_from(start)
                if cycle is not None:
                    chain = "->".join(str(pe) for pe in cycle)
                    violations.append(
                        ScheduleViolation(
                            "deadlock",
                            f"round {index}: cyclic wait {chain} — every "
                            "PE in the ring blocks on a receive that never "
                            "posts",
                        )
                    )
                    break
    if messages is not None:
        message_pairs = {
            (min(s, d), max(s, d)) for s, d, _ in _as_triples(messages)
        }
        scheduled = set(seen_pairs)
        for pair in sorted(message_pairs - scheduled):
            violations.append(
                ScheduleViolation(
                    "coverage",
                    f"exchange {pair} appears in the message set but in no "
                    "round",
                )
            )
        for pair in sorted(scheduled - message_pairs):
            violations.append(
                ScheduleViolation(
                    "coverage",
                    f"round schedules exchange {pair} that is not in the "
                    "message set",
                )
            )
    return violations


def check_coverage(schedule, distribution) -> List[ScheduleViolation]:
    """Every shared node exchanged between all pairs of its resident PEs.

    Recomputes residency from ``distribution.node_parts`` (the ground
    truth) and compares word counts pair by pair against the schedule's
    messages, independently of how the schedule was built.
    """
    violations: List[ScheduleViolation] = []
    csr = distribution.node_parts.tocsr()
    indptr, indices = csr.indptr, csr.indices
    expected: Dict[Tuple[int, int], int] = {}
    for node in range(csr.shape[0]):
        parts = indices[indptr[node] : indptr[node + 1]]
        for i in range(len(parts)):
            for j in range(i + 1, len(parts)):
                pair = (int(parts[i]), int(parts[j]))
                expected[pair] = expected.get(pair, 0) + 1
    directed: Dict[Tuple[int, int], int] = {}
    for src, dst, words in _as_triples(schedule.messages):
        directed[(src, dst)] = words
    for (a, b), count in sorted(expected.items()):
        want = WORDS_PER_NODE * count
        for src, dst in ((a, b), (b, a)):
            got = directed.get((src, dst))
            if got is None:
                violations.append(
                    ScheduleViolation(
                        "coverage",
                        f"PEs {a} and {b} share {count} node(s) but the "
                        f"schedule has no {src}->{dst} message",
                    )
                )
            elif got != want:
                violations.append(
                    ScheduleViolation(
                        "coverage",
                        f"message {src}->{dst} carries {got} words; the "
                        f"{count} shared node(s) require {want}",
                    )
                )
    for (src, dst) in sorted(directed):
        pair = (min(src, dst), max(src, dst))
        if pair not in expected:
            violations.append(
                ScheduleViolation(
                    "coverage",
                    f"message {src}->{dst} exchanges data between PEs that "
                    "share no nodes",
                )
            )
    return violations


def check_schedule(schedule, distribution=None) -> ScheduleReport:
    """Full static verification of an in-memory schedule.

    ``schedule`` is duck-typed (``num_parts``, ``messages``, optional
    ``exchange_rounds()``); ``distribution`` (optional) enables the
    shared-node coverage check.
    """
    num_parts = int(schedule.num_parts)
    violations = check_messages(schedule.messages, num_parts)
    violations += check_parity(schedule.messages, num_parts)
    rounds_fn = getattr(schedule, "exchange_rounds", None)
    if rounds_fn is not None:
        undirected = rounds_fn()
        directed_rounds = [
            [(a, b) for a, b in rnd] + [(b, a) for a, b in rnd]
            for rnd in undirected
        ]
        violations += check_rounds(
            directed_rounds, num_parts, messages=schedule.messages
        )
    if distribution is not None:
        violations += check_coverage(schedule, distribution)
    return ScheduleReport(num_parts=num_parts, violations=violations)


def check_payload(payload: object) -> ScheduleReport:
    """Check a golden-schedule JSON payload (see module docstring)."""
    if not isinstance(payload, dict) or "num_parts" not in payload:
        return ScheduleReport(
            num_parts=0,
            violations=[
                ScheduleViolation(
                    "malformed",
                    "golden schedule must be an object with `num_parts`",
                )
            ],
        )
    num_parts = int(payload["num_parts"])
    messages = payload.get("messages", [])
    violations = check_messages(messages, num_parts)
    violations += check_parity(messages, num_parts)
    rounds = payload.get("rounds")
    if rounds is not None:
        violations += check_rounds(
            rounds, num_parts, messages=messages if messages else None
        )
    return ScheduleReport(num_parts=num_parts, violations=violations)


@register
class ScheduleInvariantRule(Rule):
    name = "schedule-invariant"
    description = (
        "golden exchange schedule breaks symmetry / deadlock-freedom / "
        "coverage"
    )

    def check_data(self, path, payload):
        report = check_payload(payload)
        for violation in report.violations:
            yield Finding(
                rule=self.name,
                path=path,
                line=1,
                col=0,
                message=str(violation),
            )
