"""The superstep sanitizer (``REPRO_SAN=1``): dynamic BSP race detection.

The static rules in :mod:`repro.analysis.ownership` catch discipline
violations visible in the source; this module catches them in *running
code* — a backend that mutates its neighbour's input, output slots that
alias each other, an exchange that skips (or invents) a scheduled
message, a gather that reads ghost entries the exchange never filled,
an eviction that swaps the partition without rebuilding the ownership
map.

Mechanism: the executor (when sanitizing) hands each phase *tracked*
views of the per-PE vectors.  :class:`TrackedArray` is an
``np.ndarray`` subclass whose ``__getitem__``/``__setitem__`` record
(pe, phase, dof-set) access records into a log shared across worker
threads (CPython ``list.append`` is atomic under the GIL, so the
threaded backend needs no extra locking; process-pool workers receive
pickled copies whose tracking state is inert, which is sound — a
worker cannot race on the parent's memory).  After each phase the
:class:`SuperstepSanitizer` checks the recorded access sets against
the ownership map (``DataDistribution``) and the exchange schedule's
happens-before structure (``CommSchedule`` pair table):

* **compute** — writes to any input slot are input mutations; output
  slots sharing memory pairwise are racy write/write pairs.
* **exchange** — every delivered block must match a scheduled
  ``(src, dst)`` message with exactly the scheduled dof set; scheduled
  messages that never arrive leave stale ghosts; writes outside the
  scheduled incoming dof set are non-owner writes.
* **gather** — each PE may read only the dofs it owns; reading a
  ghost dof is order-dependent (its value depends on exchange
  completeness) and is blamed exactly.

Findings carry exact ``(pe, step, phase, dof)`` blame.  Disabled
(``REPRO_SAN`` unset) the executor takes the historical path bit for
bit — the only cost is one ``is None`` test per multiply, the same
pattern as telemetry and runtime contracts.

See DESIGN.md section 12 and the ``repro-san`` CLI.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "SanFinding",
    "SanitizerError",
    "SuperstepSanitizer",
    "TrackedArray",
    "sanitizer_enabled",
]

#: Cap on dofs listed per finding (full sets stay in the finding's data).
_BLAME_DOFS = 8


def sanitizer_enabled() -> bool:
    """Whether ``REPRO_SAN=1`` opts the process into sanitized runs."""
    return os.environ.get("REPRO_SAN", "") == "1"


@dataclass(frozen=True)
class SanFinding:
    """One detected BSP-discipline violation, with exact blame."""

    kind: str  # racy-write-write | non-owner-write | input-mutation |
    #            stale-ghost | ghost-read | unscheduled-exchange-write |
    #            duplicate-delivery | stale-ownership-map
    pe: int  # blamed PE slot (-1 = executor-wide)
    step: int
    phase: str  # compute | exchange | gather | superstep
    dofs: Tuple[int, ...]
    detail: str

    def format(self) -> str:
        shown = ",".join(str(d) for d in self.dofs[:_BLAME_DOFS])
        if len(self.dofs) > _BLAME_DOFS:
            shown += f",... ({len(self.dofs)} total)"
        where = f"pe {self.pe}" if self.pe >= 0 else "executor"
        head = f"step {self.step} {self.phase} {where}: {self.kind}"
        tail = f" [dofs {shown}]" if self.dofs else ""
        return f"{head}: {self.detail}{tail}"


class SanitizerError(RuntimeError):
    """Raised (strict mode) when a superstep ends with findings."""

    def __init__(self, findings: Sequence[SanFinding]) -> None:
        self.findings = list(findings)
        lines = "\n  ".join(f.format() for f in self.findings)
        super().__init__(
            f"repro-san: {len(self.findings)} finding(s)\n  {lines}"
        )


class _AccessLog:
    """Shared mutable log the tracked views append into.

    ``phase`` is flipped by the sanitizer between phases; worker
    threads only append, so no locking is needed under the GIL.
    """

    __slots__ = ("phase", "records")

    def __init__(self) -> None:
        self.phase = "compute"
        self.records: List[Tuple[int, str, str, np.ndarray]] = []


class TrackedArray(np.ndarray):
    """ndarray view recording indexed reads/writes with dof precision.

    Only views created via :meth:`wrap` record; any derived view or
    ufunc result has its tracking state reset by
    ``__array_finalize__`` (and pickled copies arrive inert in
    process-pool workers).  Values and memory are untouched — a
    tracked view is bit-identical to its base.
    """

    def __array_finalize__(self, obj) -> None:
        self._san_log = None
        self._san_pe = -1

    @classmethod
    def wrap(cls, arr: np.ndarray, log: _AccessLog, pe: int) -> "TrackedArray":
        view = np.asarray(arr).view(cls)
        view._san_log = log
        view._san_pe = pe
        return view

    def _dofs(self, idx) -> np.ndarray:
        flat = np.arange(self.size).reshape(self.shape)
        elems = np.atleast_1d(np.asarray(flat[idx])).ravel()
        if self.ndim == 2 and self.shape[1] > 0:
            # Block vectors are (ndofs, r): a dof is a *row*, and an
            # access to any column of a row touches that dof.
            return np.unique(elems // self.shape[1])
        return elems

    def __getitem__(self, idx):
        log = self._san_log
        if log is not None:
            log.records.append(
                (self._san_pe, "r", log.phase, self._dofs(idx))
            )
        return super().__getitem__(idx)

    def __setitem__(self, idx, value) -> None:
        log = self._san_log
        if log is not None:
            log.records.append(
                (self._san_pe, "w", log.phase, self._dofs(idx))
            )
        super().__setitem__(idx, value)


def _union(chunks: List[np.ndarray]) -> np.ndarray:
    if not chunks:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(chunks).astype(np.int64))


def _overlap_dofs(a: np.ndarray, b: np.ndarray) -> Tuple[int, ...]:
    """Dofs of ``a`` (its local numbering) whose memory ``b`` also maps.

    Exact for C-contiguous buffers (the per-PE vector layout, 1-D, or
    the block layout, (ndofs, r) with a dof per *row*); falls back to
    "unknown" (empty) otherwise — ``shares_memory`` has already
    established the race either way.
    """
    if not (a.flags.c_contiguous and b.flags.c_contiguous):
        return ()
    a0 = a.__array_interface__["data"][0]
    b0 = b.__array_interface__["data"][0]
    lo = max(a0, b0)
    hi = min(a0 + a.nbytes, b0 + b.nbytes)
    if lo >= hi or a.itemsize == 0:
        return ()
    start = (lo - a0) // a.itemsize
    stop = (hi - a0 + a.itemsize - 1) // a.itemsize
    if a.ndim == 2 and a.shape[1] > 0:
        width = a.shape[1]
        start, stop = start // width, (stop + width - 1) // width
    return tuple(range(int(start), int(stop)))


class SuperstepSanitizer:
    """Checks one executor's supersteps against ownership + schedule.

    Built by :class:`~repro.smvp.executor.DistributedSMVP` from its
    own distribution-derived maps:

    ``owned_dofs[pe]``
        Local dof indices PE ``pe`` owns (the gather source map) —
        everything else in the slot is a ghost.
    ``expected_sends[(src, dst)]``
        The dst-local dofs the schedule says ``src`` contributes to
        ``dst`` in every exchange (from the shared-node pair table).
    ``ownership_hash``
        The bound :class:`DataDistribution`'s hash; ``begin_step``
        re-checks it so any reconfiguration that swaps the
        distribution without rebuilding the sanitizer is flagged
        (eviction atomicity).

    ``strict=True`` raises :class:`SanitizerError` at the end of any
    superstep that produced findings; ``strict=False`` accumulates
    them for an end-of-run report (the ``repro-san`` CLI).
    """

    def __init__(
        self,
        num_parts: int,
        local_sizes: Sequence[int],
        owned_dofs: Sequence[np.ndarray],
        expected_sends: Dict[Tuple[int, int], np.ndarray],
        ownership_hash: int,
        strict: bool = True,
    ) -> None:
        self.num_parts = int(num_parts)
        self.local_sizes = [int(n) for n in local_sizes]
        self.owned_dofs = [
            np.unique(np.asarray(d, dtype=np.int64)) for d in owned_dofs
        ]
        self.expected_sends = {
            key: np.unique(np.asarray(d, dtype=np.int64))
            for key, d in expected_sends.items()
        }
        self.ownership_hash = int(ownership_hash)
        self.strict = strict
        self.findings: List[SanFinding] = []
        #: (pe, step, phase, kind) -> number of recorded accesses.
        self.access_counts: Dict[Tuple[int, int, str, str], int] = {}
        self.steps_checked = 0
        self._log = _AccessLog()
        self._step = -1
        self._step_start = 0  # findings index at begin_step
        self._x_wrapped: List[TrackedArray] = []
        self._y_wrapped: List[TrackedArray] = []

    # -- lifecycle ---------------------------------------------------------

    def adopt(self, predecessor: "SuperstepSanitizer") -> None:
        """Continue a predecessor's report across a reconfiguration.

        The findings list, access tallies, and strictness are shared
        (not copied) so a post-eviction executor keeps appending to
        the same run-level report — mirroring how SDC history survives
        eviction.
        """
        self.findings = predecessor.findings
        self.access_counts = predecessor.access_counts
        self.steps_checked = predecessor.steps_checked
        self.strict = predecessor.strict

    def begin_step(self, step: int, distribution) -> None:
        """Open a superstep; re-verify the bound ownership map."""
        self._step = int(step)
        self._step_start = len(self.findings)
        self._log = _AccessLog()
        self._log.phase = "compute"
        current = int(distribution.ownership_hash)
        if current != self.ownership_hash:
            self._emit(
                "stale-ownership-map",
                -1,
                "superstep",
                (),
                f"executor distribution hash {current:#010x} does not "
                f"match the sanitizer's bound ownership map "
                f"{self.ownership_hash:#010x}; a reconfiguration swapped "
                "the distribution without rebuilding the sanitizer",
            )

    def wrap(self, arrays: Sequence[np.ndarray], which: str) -> List[TrackedArray]:
        wrapped = [
            TrackedArray.wrap(arr, self._log, pe)
            for pe, arr in enumerate(arrays)
        ]
        if which == "x":
            self._x_wrapped = wrapped
        else:
            self._y_wrapped = wrapped
        return wrapped

    def set_phase(self, phase: str) -> None:
        self._log.phase = phase

    # -- per-phase checks --------------------------------------------------

    def check_compute(self, y_locals: Sequence[np.ndarray]) -> None:
        """Post-compute: no input mutations, no aliased output slots."""
        writes: Dict[int, List[np.ndarray]] = {}
        for pe, kind, phase, dofs in self._log.records:
            if phase == "compute" and kind == "w":
                writes.setdefault(pe, []).append(dofs)
        for pe in sorted(writes):
            dofs = _union(writes[pe])
            self._emit(
                "input-mutation",
                pe,
                "compute",
                tuple(int(d) for d in dofs),
                f"input slot x[{pe}] was written during the compute "
                "phase; inputs are frozen after scatter",
            )
        for a in range(len(y_locals)):
            ya = np.asarray(y_locals[a])
            if ya.shape != (self.local_sizes[a],) and not (
                ya.ndim == 2 and ya.shape[0] == self.local_sizes[a]
            ):
                self._emit(
                    "non-owner-write",
                    a,
                    "compute",
                    (),
                    f"output slot y[{a}] has shape {ya.shape}, expected "
                    f"({self.local_sizes[a]},) or "
                    f"({self.local_sizes[a]}, r)",
                )
            for b in range(a + 1, len(y_locals)):
                yb = np.asarray(y_locals[b])
                if np.shares_memory(ya, yb):
                    self._emit(
                        "racy-write-write",
                        a,
                        "compute",
                        _overlap_dofs(ya, yb),
                        f"output slots y[{a}] and y[{b}] share memory; "
                        "concurrent per-PE products would race",
                    )

    def check_exchange(self, delivered: Sequence[Tuple[object, np.ndarray]]) -> None:
        """Post-exchange: deliveries must equal the schedule exactly."""
        seen: Dict[Tuple[int, int], int] = {}
        for send, _payload in delivered:
            key = (int(send.src), int(send.dst))
            seen[key] = seen.get(key, 0) + 1
            dofs = np.unique(np.asarray(send.dof_dst, dtype=np.int64))
            expected = self.expected_sends.get(key)
            if expected is None:
                self._emit(
                    "unscheduled-exchange-write",
                    key[0],
                    "exchange",
                    tuple(int(d) for d in dofs),
                    f"delivery {key[0]}->{key[1]} is not in the "
                    "communication schedule",
                )
            elif not np.array_equal(dofs, expected):
                extra = np.setdiff1d(dofs, expected)
                self._emit(
                    "unscheduled-exchange-write",
                    key[0],
                    "exchange",
                    tuple(int(d) for d in (extra if extra.size else dofs)),
                    f"delivery {key[0]}->{key[1]} touches dofs outside "
                    "its scheduled shared-node set",
                )
        for key, count in sorted(seen.items()):
            if count > 1 and key in self.expected_sends:
                self._emit(
                    "duplicate-delivery",
                    key[1],
                    "exchange",
                    tuple(int(d) for d in self.expected_sends[key]),
                    f"scheduled delivery {key[0]}->{key[1]} was applied "
                    f"{count} times; shared partials were double-summed",
                )
        for key in sorted(self.expected_sends):
            if key not in seen:
                self._emit(
                    "stale-ghost",
                    key[1],
                    "exchange",
                    tuple(int(d) for d in self.expected_sends[key]),
                    f"scheduled delivery {key[0]}->{key[1]} never "
                    "arrived; the receiver's shared dofs hold stale "
                    "partial sums",
                )
        # Writes recorded through the tracked y views must stay inside
        # the scheduled incoming dof set — catches writers that bypass
        # the transport entirely.
        incoming: Dict[int, List[np.ndarray]] = {}
        for (_src, dst), dofs in self.expected_sends.items():
            incoming.setdefault(dst, []).append(dofs)
        writes: Dict[int, List[np.ndarray]] = {}
        for pe, kind, phase, dofs in self._log.records:
            if phase == "exchange" and kind == "w":
                writes.setdefault(pe, []).append(dofs)
        for pe in sorted(writes):
            wrote = _union(writes[pe])
            allowed = _union(incoming.get(pe, []))
            extra = np.setdiff1d(wrote, allowed)
            if extra.size:
                self._emit(
                    "non-owner-write",
                    pe,
                    "exchange",
                    tuple(int(d) for d in extra),
                    f"exchange-phase write into y[{pe}] outside the "
                    "scheduled incoming shared dofs",
                )

    def check_gather(self) -> None:
        """Post-gather: each PE contributed only the dofs it owns."""
        reads: Dict[int, List[np.ndarray]] = {}
        for pe, kind, phase, dofs in self._log.records:
            if phase == "gather" and kind == "r":
                reads.setdefault(pe, []).append(dofs)
        for pe in sorted(reads):
            read = _union(reads[pe])
            extra = np.setdiff1d(read, self.owned_dofs[pe])
            if extra.size:
                self._emit(
                    "ghost-read",
                    pe,
                    "gather",
                    tuple(int(d) for d in extra),
                    f"gather read ghost dofs of y[{pe}] it does not "
                    "own; the committed value depends on exchange "
                    "completeness and summation order",
                )

    def end_step(self) -> None:
        """Close the superstep: tally accesses, raise when strict."""
        for pe, kind, phase, dofs in self._log.records:
            key = (pe, self._step, phase, kind)
            self.access_counts[key] = self.access_counts.get(key, 0) + len(
                dofs
            )
        self.steps_checked += 1
        self._x_wrapped = []
        self._y_wrapped = []
        new = self.findings[self._step_start :]
        if new and self.strict:
            raise SanitizerError(new)

    # -- reporting ---------------------------------------------------------

    def _emit(
        self, kind: str, pe: int, phase: str, dofs: Tuple[int, ...], detail: str
    ) -> None:
        self.findings.append(
            SanFinding(
                kind=kind,
                pe=pe,
                step=self._step,
                phase=phase,
                dofs=dofs,
                detail=detail,
            )
        )

    def summary(self) -> Dict[str, object]:
        by_kind: Dict[str, int] = {}
        for finding in self.findings:
            by_kind[finding.kind] = by_kind.get(finding.kind, 0) + 1
        return {
            "steps_checked": self.steps_checked,
            "findings": len(self.findings),
            "by_kind": dict(sorted(by_kind.items())),
            "reads_tracked": sum(
                n for (_, _, _, k), n in self.access_counts.items() if k == "r"
            ),
            "writes_tracked": sum(
                n for (_, _, _, k), n in self.access_counts.items() if k == "w"
            ),
        }

    def render_report(self) -> str:
        """Human-readable end-of-run report (the ``repro-san`` CLI)."""
        lines = []
        for finding in self.findings:
            lines.append(finding.format())
        stats = self.summary()
        lines.append(
            f"repro-san: {stats['findings']} finding(s) over "
            f"{stats['steps_checked']} superstep(s); tracked "
            f"{stats['reads_tracked']} read / "
            f"{stats['writes_tracked']} write dof accesses"
        )
        return "\n".join(lines) + "\n"
