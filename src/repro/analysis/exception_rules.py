"""Exception-hygiene lint rules.

``no-bare-except``
    Bare ``except:`` handlers, and overly-broad handlers (``except
    Exception`` / ``except BaseException``) whose body only swallows
    (``pass``, ``...``, or ``continue``).  In a fault-tolerant
    pipeline, a silently swallowed exception is the worst failure
    mode: the detection layer exists precisely so that every fault is
    *observed* — counted, typed, recovered, or escalated — and a
    swallowed exception deletes the observation.  Broad handlers that
    do something (log, count, re-raise as a typed error, return a
    fallback) are fine; it is the silent swallow that is flagged.
    CLI entry-point modules (``cli.py``) are exempt — a top-level
    catch-all that converts any error into an exit code is the one
    legitimate place to be broad.  Intentional exceptions (e.g. a
    best-effort fast path with a verified fallback) carry a
    ``# repro-lint: ignore[no-bare-except]`` pragma.
"""

from __future__ import annotations

import ast
import os

from repro.analysis.core import Finding, Rule, register

_BROAD = {"Exception", "BaseException"}


def _exempt(path: str) -> bool:
    """True for CLI entry-point modules."""
    return os.path.basename(os.path.normpath(path)) == "cli.py"


def _is_broad(handler: ast.ExceptHandler) -> bool:
    """Whether the handler catches everything (or nearly)."""
    node = handler.type
    if node is None:  # bare except:
        return True
    if isinstance(node, ast.Name):
        return node.id in _BROAD
    if isinstance(node, ast.Tuple):
        return any(
            isinstance(el, ast.Name) and el.id in _BROAD
            for el in node.elts
        )
    return False


def _swallows(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body does nothing with the exception."""
    for stmt in handler.body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Continue):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, ast.Constant
        ):
            continue  # docstring or `...`
        return False
    return True


@register
class NoBareExceptRule(Rule):
    name = "no-bare-except"
    description = (
        "bare `except:` or swallowed broad exception handler; catch "
        "the narrowest type and observe every fault (cli.py exempt)"
    )

    def check_python(self, path, source, tree):
        if _exempt(path):
            return
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield Finding(
                    rule=self.name,
                    path=path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        "bare `except:` catches everything including "
                        "KeyboardInterrupt/SystemExit; name the "
                        "exception types this code can actually handle"
                    ),
                )
            elif _is_broad(node) and _swallows(node):
                yield Finding(
                    rule=self.name,
                    path=path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        "broad exception handler silently swallows the "
                        "error; narrow the type, or count/log/re-raise "
                        "so the fault stays observable"
                    ),
                )
