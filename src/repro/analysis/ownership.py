"""BSP ownership discipline: annotation vocabulary + static rules.

The superstep engine is correct only while every PE touches exactly the
data the ownership map and exchange schedule allow: compute writes stay
inside the writer's own slot of the per-PE arrays, cross-PE writes
happen only inside the exchange, ghost entries are read only *after*
the exchange that fills them, and floating-point reductions never
depend on dict/set iteration order.  This module gives those rules a
machine-checkable form.

**Annotation vocabulary** (zero runtime cost — the decorators only
attach metadata):

``@owns("y_locals", pe="pe")``
    The function writes only slot ``pe`` (a parameter name) of the
    named per-PE arrays.  Lint accepts stores indexed by that
    parameter and rejects everything else.

``@exchange_phase("y_locals")``
    The function implements (part of) the exchange and may perform
    cross-PE writes into the named arrays.  This is the *only* legal
    home for writes indexed by another PE's id.

``@reads_ghosts("y_locals")``
    The function deliberately reads pre-exchange partial sums (ghost
    entries) — e.g. ``build_sends`` snapshotting shared-dof partials.
    Suppresses the ``ghost-read`` ordering rule.

**Static rules** (registered with the ``repro-lint`` engine):

``bsp-ownership``
    Stores into a per-PE array (a name ending in ``_locals`` or one
    declared via ``@owns``) indexed by anything other than the owned
    ``pe`` parameter or an enclosing ``for ... in range(...)`` loop
    variable, outside an ``@exchange_phase`` function.

``ghost-read``
    Subscript *reads* of a per-PE array before the exchange call
    (``run_exchange`` / ``apply_sends`` / ``communication_phase``)
    inside the same function, unless annotated ``@reads_ghosts``.

``exchange-buffer-mutation``
    In-place mutation of a transport payload (``send.payload[...] =``,
    augmented stores, or in-place mutator calls).  ``BlockSend``
    payloads are snapshots; middleware must copy, never mutate.

``bsp-reduction-order``
    Augmented accumulation inside a loop iterating a dict view
    (``.items()`` / ``.values()`` / ``.keys()``) that is not wrapped in
    ``sorted(...)`` — the floating-point sum would depend on insertion
    order.

See DESIGN.md section 12 for the ownership/happens-before model.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set, Tuple

from repro.analysis.core import Finding, Rule, register

# --------------------------------------------------------------------------
# Runtime annotation vocabulary (metadata only; no behavior change).
# --------------------------------------------------------------------------


def owns(*arrays: str, pe: str = "pe"):
    """Declare that a function writes only slot ``pe`` of ``arrays``."""

    def mark(fn):
        fn.__bsp_owns__ = tuple(arrays)
        fn.__bsp_pe_param__ = pe
        return fn

    return mark


def exchange_phase(*arrays: str):
    """Declare a function as (part of) the exchange: cross-PE writes OK."""

    def mark(fn):
        fn.__bsp_exchange__ = tuple(arrays) or ("*",)
        return fn

    return mark


def reads_ghosts(*arrays: str):
    """Declare deliberate pre-exchange reads of ghost/partial entries."""

    def mark(fn):
        fn.__bsp_reads_ghosts__ = tuple(arrays) or ("*",)
        return fn

    return mark


#: Decorator names the static rules recognize on function definitions.
_DECORATORS = ("owns", "exchange_phase", "reads_ghosts")

#: In-place ndarray mutators relevant to per-PE slot / payload buffers.
_MUTATORS = frozenset(
    {"fill", "sort", "resize", "put", "partition", "setflags"}
)

#: Calls that perform (part of) the exchange for ghost-freshness order.
_EXCHANGE_CALLS = frozenset(
    {"run_exchange", "apply_sends", "communication_phase"}
)


def _dotted_tail(func: ast.AST) -> Optional[str]:
    """Last component of a call target (``a.b.c(...)`` -> ``"c"``)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _decorator_info(fn: ast.AST) -> Tuple[Set[str], Optional[str], Set[str], Set[str]]:
    """Parse the BSP decorators on a function definition.

    Returns ``(owned_arrays, pe_param, exchange_arrays, ghost_arrays)``
    where string-constant decorator arguments name the arrays; a bare
    ``@exchange_phase()`` / ``@reads_ghosts()`` yields ``{"*"}``.
    """
    owned: Set[str] = set()
    pe_param: Optional[str] = None
    exchange: Set[str] = set()
    ghosts: Set[str] = set()
    for deco in getattr(fn, "decorator_list", []):
        if not isinstance(deco, ast.Call):
            continue
        name = _dotted_tail(deco.func)
        if name not in _DECORATORS:
            continue
        arrays = {
            arg.value
            for arg in deco.args
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str)
        }
        if name == "owns":
            owned |= arrays
            pe_param = "pe"
            for kw in deco.keywords:
                if (
                    kw.arg == "pe"
                    and isinstance(kw.value, ast.Constant)
                    and isinstance(kw.value.value, str)
                ):
                    pe_param = kw.value.value
        elif name == "exchange_phase":
            exchange |= arrays or {"*"}
        else:
            ghosts |= arrays or {"*"}
    return owned, pe_param, exchange, ghosts


def _functions(tree: ast.AST) -> Iterable[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _own_body_walk(fn: ast.AST) -> Iterable[ast.AST]:
    """Walk a function body without descending into nested defs."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _slot_store(target: ast.AST) -> Optional[Tuple[str, ast.AST]]:
    """If ``target`` stores through ``NAME[idx]...``, return (NAME, idx).

    Peels trailing subscripts/attributes so ``y_locals[j][dofs] = v``
    and ``y_locals[j].real += v`` both resolve to ``("y_locals", j)``.
    """
    node = target
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        inner = node.value
        if isinstance(node, ast.Subscript) and isinstance(inner, ast.Name):
            return inner.id, node.slice
        node = inner
    return None


def _range_loop_vars(fn: ast.AST) -> Set[str]:
    """Names bound by deterministic loops (``range``/``enumerate``/``sorted``)."""
    out: Set[str] = set()
    for node in _own_body_walk(fn):
        if not isinstance(node, ast.For):
            continue
        if not (
            isinstance(node.iter, ast.Call)
            and _dotted_tail(node.iter.func) in ("range", "enumerate", "sorted")
        ):
            continue
        targets = (
            node.target.elts
            if isinstance(node.target, ast.Tuple)
            else [node.target]
        )
        for tgt in targets:
            if isinstance(tgt, ast.Name):
                out.add(tgt.id)
    return out


def _is_per_pe(name: str, declared: Set[str]) -> bool:
    return name.endswith("_locals") or name in declared


def _index_repr(idx: ast.AST) -> str:
    try:
        return ast.unparse(idx)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return "<index>"


@register
class BspOwnershipRule(Rule):
    name = "bsp-ownership"
    description = (
        "write to a per-PE array slot not owned by the writer; cross-PE "
        "writes belong in @exchange_phase functions"
    )

    def check_python(self, path, source, tree):
        for fn in _functions(tree):
            owned, pe_param, exchange, _ = _decorator_info(fn)
            loop_vars = _range_loop_vars(fn)
            declared = (owned | exchange) - {"*"}
            for node in _own_body_walk(fn):
                targets: List[ast.AST] = []
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    targets = [node.target]
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATORS
                    and isinstance(node.func.value, ast.Subscript)
                ):
                    targets = [node.func.value]
                for target in targets:
                    store = _slot_store(target)
                    if store is None:
                        continue
                    array, idx = store
                    if not _is_per_pe(array, declared):
                        continue
                    if "*" in exchange or array in exchange:
                        continue
                    if isinstance(idx, ast.Name) and (
                        idx.id == pe_param or idx.id in loop_vars
                    ):
                        continue
                    yield Finding(
                        rule=self.name,
                        path=path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"write to per-PE array "
                            f"`{array}[{_index_repr(idx)}]` outside the "
                            "owned slot; cross-PE writes must live in an "
                            "@exchange_phase function (or declare the "
                            "owned index with @owns)"
                        ),
                    )


@register
class GhostReadRule(Rule):
    name = "ghost-read"
    description = (
        "per-PE array read before the exchange that fills its ghost "
        "entries in the same function (@reads_ghosts exempts)"
    )

    def check_python(self, path, source, tree):
        for fn in _functions(tree):
            owned, _, exchange, ghosts = _decorator_info(fn)
            if "*" in ghosts:
                continue
            exchange_lines = [
                node.lineno
                for node in _own_body_walk(fn)
                if isinstance(node, ast.Call)
                and _dotted_tail(node.func) in _EXCHANGE_CALLS
            ]
            if not exchange_lines:
                continue
            first_exchange = min(exchange_lines)
            declared = (owned | exchange) - {"*"}
            for node in _own_body_walk(fn):
                if not (
                    isinstance(node, ast.Subscript)
                    and isinstance(node.ctx, ast.Load)
                    and isinstance(node.value, ast.Name)
                ):
                    continue
                array = node.value.id
                if not _is_per_pe(array, declared):
                    continue
                if array in ghosts:
                    continue
                if node.lineno < first_exchange:
                    yield Finding(
                        rule=self.name,
                        path=path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"read of `{array}[...]` on line {node.lineno} "
                            f"precedes the exchange on line "
                            f"{first_exchange}; ghost entries are stale "
                            "until the exchange completes (annotate "
                            "@reads_ghosts if the partial sums are "
                            "intended)"
                        ),
                    )


@register
class ExchangeBufferMutationRule(Rule):
    name = "exchange-buffer-mutation"
    description = (
        "in-place mutation of a transport payload; BlockSend payloads "
        "are snapshots and middleware must copy"
    )

    def _payload_root(self, node: ast.AST) -> Optional[ast.Attribute]:
        """Innermost ``<expr>.payload`` attribute under ``node``, if any."""
        while isinstance(node, (ast.Subscript, ast.Attribute)):
            if isinstance(node, ast.Attribute) and node.attr == "payload":
                return node
            node = node.value
        return None

    def check_python(self, path, source, tree):
        for node in ast.walk(tree):
            suspects: List[Tuple[ast.AST, str]] = []
            if isinstance(node, ast.Assign):
                suspects = [(t, "store through") for t in node.targets]
            elif isinstance(node, ast.AugAssign):
                suspects = [(node.target, "augmented store through")]
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATORS
            ):
                suspects = [(node.func.value, f"{node.func.attr}() on")]
            for target, verb in suspects:
                payload = self._payload_root(target)
                if payload is None:
                    continue
                # A bare rebinding `send.payload = ...` is also a
                # mutation of the message, so flag the attribute itself.
                yield Finding(
                    rule=self.name,
                    path=path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"{verb} `.payload`: transport payloads are "
                        "snapshots shared with the sender; copy before "
                        "modifying"
                    ),
                )
                break


@register
class BspReductionOrderRule(Rule):
    name = "bsp-reduction-order"
    description = (
        "accumulation inside dict-view iteration; wrap the iterable in "
        "sorted(...) so the reduction order is deterministic"
    )

    def check_python(self, path, source, tree):
        for node in ast.walk(tree):
            if not isinstance(node, ast.For):
                continue
            it = node.iter
            if not (
                isinstance(it, ast.Call)
                and isinstance(it.func, ast.Attribute)
                and it.func.attr in ("items", "values", "keys")
            ):
                continue
            for child in ast.walk(node):
                if isinstance(child, ast.AugAssign):
                    yield Finding(
                        rule=self.name,
                        path=path,
                        line=child.lineno,
                        col=child.col_offset,
                        message=(
                            "augmented accumulation inside iteration "
                            f"over `.{it.func.attr}()`; the reduction "
                            "order follows dict insertion order — wrap "
                            "the iterable in sorted(...)"
                        ),
                    )
