"""Inline suppression pragmas for ``repro-lint``.

Syntax (anywhere in a comment on the offending line)::

    x = random.random()  # repro-lint: ignore[unseeded-random]
    y = foo()            # repro-lint: ignore[rule-a,rule-b]
    z = bar()            # repro-lint: ignore

A bare ``ignore`` suppresses every rule on that line; the bracketed
form suppresses only the named rules.  A file whose first three lines
contain ``# repro-lint: skip-file`` is exempt entirely (reserved for
generated code; nothing in ``src/`` should need it).

Pragmas are the escape hatch for *intentional* nondeterminism — e.g.
the wall-clock reads inside :mod:`repro.util.clock` itself — and every
use is expected to be self-explanatory in review.
"""

from __future__ import annotations

import re
from typing import FrozenSet, List, Optional

#: Matches one pragma comment; group 1 is the optional rule list.
_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*ignore(?:\[([A-Za-z0-9_,\s-]+)\])?"
)

_SKIP_FILE_RE = re.compile(r"#\s*repro-lint:\s*skip-file")

#: All rules, as far as a bare ``ignore`` is concerned.
ALL = frozenset({"*"})


def parse_line_pragma(line: str) -> Optional[FrozenSet[str]]:
    """Rules suppressed on this source line, or ``None`` if no pragma.

    Returns :data:`ALL` for a bare ``ignore``.
    """
    match = _PRAGMA_RE.search(line)
    if match is None:
        return None
    rules = match.group(1)
    if rules is None:
        return ALL
    return frozenset(
        name.strip() for name in rules.split(",") if name.strip()
    )


def file_skipped(lines: List[str]) -> bool:
    """Whether the file opts out wholesale (``skip-file`` in the head)."""
    return any(_SKIP_FILE_RE.search(line) for line in lines[:3])


def suppressed(lines: List[str], rule: str, line_number: int) -> bool:
    """Whether ``rule`` is pragma-suppressed at 1-based ``line_number``."""
    if not 1 <= line_number <= len(lines):
        return False
    rules = parse_line_pragma(lines[line_number - 1])
    if rules is None:
        return False
    return rules is ALL or "*" in rules or rule in rules
