"""Shared plumbing for the table generators.

Statistics for one (instance, subdomain count, partitioner) triple are
used by several tables, so they are computed once and memoized here.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro import paperdata
from repro.mesh.instances import INSTANCES, QuakeInstance, instance_names
from repro.partition.base import partition_mesh
from repro.smvp.distribution import DataDistribution
from repro.stats.exflow import ExflowStyleStats, exflow_style_stats
from repro.stats.properties import SmvpStats, smvp_statistics

#: The subdomain counts of Figures 6 and 7.
SUBDOMAIN_COUNTS = paperdata.SUBDOMAIN_COUNTS

#: Partitioner used for all headline tables: the MTTV-style geometric
#: bisection, matching the paper's Archimedes partitioner.  (Plain RCB
#: is ~2-3x worse on worst-PE volume in the graded basin region — see
#: the partitioner ablation bench.)
DEFAULT_METHOD = "geometric"

_STATS_CACHE: Dict[Tuple[str, int, str], SmvpStats] = {}
_EXFLOW_CACHE: Dict[Tuple[str, int, str], ExflowStyleStats] = {}


def paper_instances() -> List[QuakeInstance]:
    """The sf*e instances (not demo), smallest first, gated or not."""
    return [INSTANCES[n] for n in instance_names() if n != "demo"]


def enabled_paper_instances() -> List[QuakeInstance]:
    """The sf*e instances currently enabled by environment gates."""
    return [inst for inst in paper_instances() if inst.is_enabled()]


def instance_stats(
    instance: QuakeInstance,
    num_parts: int,
    method: str = DEFAULT_METHOD,
) -> SmvpStats:
    """Memoized Figure-7 statistics for one instance/partition."""
    key = (instance.name, num_parts, method)
    if key not in _STATS_CACHE:
        mesh, _ = instance.build()
        _STATS_CACHE[key] = smvp_statistics(
            mesh, num_parts=num_parts, method=method
        )
    return _STATS_CACHE[key]


def instance_exflow_stats(
    instance: QuakeInstance,
    num_parts: int,
    method: str = DEFAULT_METHOD,
) -> ExflowStyleStats:
    """Memoized Section-1 comparison stats for one instance/partition."""
    key = (instance.name, num_parts, method)
    if key not in _EXFLOW_CACHE:
        mesh, _ = instance.build()
        partition = partition_mesh(mesh, num_parts, method=method)
        dist = DataDistribution(mesh, partition)
        stats = instance_stats(instance, num_parts, method)
        _EXFLOW_CACHE[key] = exflow_style_stats(stats, dist)
    return _EXFLOW_CACHE[key]


def clear_caches() -> None:
    """Drop memoized statistics (tests use this)."""
    _STATS_CACHE.clear()
    _EXFLOW_CACHE.clear()


def gate_note(instance: QuakeInstance) -> Optional[str]:
    """Human-readable note when an instance is gated off."""
    if instance.is_enabled():
        return None
    return (
        f"{instance.name} disabled (set {instance.gate}=1); paper values "
        "shown alone"
    )
