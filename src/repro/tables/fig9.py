"""Figure 9 — sustained per-PE bandwidth required for sf2.

Pure model-side figure: Equation (1) over the Figure 7 properties.
Always computed from the paper's published sf2 rows (exact
reproduction), and additionally from measured statistics when the
corresponding instance is enabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro import paperdata
from repro.model.inputs import ModelInputs
from repro.model.requirements import (
    DEFAULT_EFFICIENCIES,
    DEFAULT_MACHINES,
    pe_bandwidth_requirement_rows,
)
from repro.mesh.instances import INSTANCES
from repro.tables.common import SUBDOMAIN_COUNTS, instance_stats
from repro.tables.render import Table

#: The application this figure concerns.
APPLICATION = "sf2"
INSTANCE = "sf2e"


def paper_inputs() -> List[ModelInputs]:
    """The published sf2 Figure 7 rows, one per subdomain count."""
    return [
        ModelInputs.from_paper(APPLICATION, p) for p in SUBDOMAIN_COUNTS
    ]


def measured_inputs() -> Optional[List[ModelInputs]]:
    """Measured sf2e rows, or ``None`` when the instance is gated off."""
    inst = INSTANCES[INSTANCE]
    if not inst.is_enabled():
        return None
    return [
        ModelInputs.from_stats(instance_stats(inst, p), label=f"{INSTANCE}/{p}")
        for p in SUBDOMAIN_COUNTS
    ]


def table_fig9() -> Table:
    """Render Figure 9: required sustained PE bandwidth (MB/s)."""
    table = Table(
        title="Figure 9: required sustained PE bandwidth for sf2 (MB/s)",
        headers=["source", "machine", "E"]
        + [f"p={p}" for p in SUBDOMAIN_COUNTS],
    )
    sources = [("paper-fig7", paper_inputs())]
    measured = measured_inputs()
    if measured is not None:
        sources.append(("measured", measured))
    for source_name, inputs in sources:
        rows = pe_bandwidth_requirement_rows(inputs)
        for machine in DEFAULT_MACHINES:
            for eff in DEFAULT_EFFICIENCIES:
                series = [
                    r.mbytes_per_second
                    for r in rows
                    if r.machine == machine.name and r.efficiency == eff
                ]
                table.add_row(
                    source_name, machine.name, eff, *[round(v) for v in series]
                )
    table.add_note(
        "paper prose: ~120 MB/s suffices at 100 MFLOPS / E=0.9, ~300 MB/s "
        "at 200 MFLOPS"
    )
    if measured is None:
        table.add_note("sf2e gated off (REPRO_LARGE=1 adds measured rows)")
    return table
