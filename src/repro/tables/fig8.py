"""Figure 8 — sustained bisection bandwidth required for sf2.

The bisection volume V is a property of the partition geometry and was
not published, so this figure always uses *measured* partitions.  When
sf2e is gated off, the largest enabled instance stands in (the claim
being reproduced — bisection bandwidth stays modest, hundreds of MB/s
at worst — is scale-robust; C_max and V shrink together).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro import paperdata
from repro.model.inputs import ModelInputs
from repro.model.requirements import (
    DEFAULT_EFFICIENCIES,
    DEFAULT_MACHINES,
    bisection_bandwidth_bytes,
)
from repro.tables.common import (
    SUBDOMAIN_COUNTS,
    enabled_paper_instances,
    instance_stats,
)
from repro.tables.render import Table


@dataclass(frozen=True)
class Fig8Row:
    instance: str
    num_parts: int
    machine: str
    mflops: float
    efficiency: float
    mbytes_per_second: float
    bisection_words: int


def reference_instance():
    """sf2e when enabled, else the largest enabled instance."""
    enabled = enabled_paper_instances()
    if not enabled:
        raise RuntimeError("no instances enabled")
    for inst in enabled:
        if inst.name == "sf2e":
            return inst
    return enabled[-1]


def compute_fig8() -> List[Fig8Row]:
    """Bisection bandwidth requirement for every (p, machine, E)."""
    inst = reference_instance()
    rows = []
    for machine in DEFAULT_MACHINES:
        for eff in DEFAULT_EFFICIENCIES:
            for p in SUBDOMAIN_COUNTS:
                stats = instance_stats(inst, p)
                inputs = ModelInputs.from_stats(stats, label=f"{inst.name}/{p}")
                bw = bisection_bandwidth_bytes(inputs, eff, machine)
                rows.append(
                    Fig8Row(
                        instance=inst.name,
                        num_parts=p,
                        machine=machine.name,
                        mflops=machine.mflops,
                        efficiency=eff,
                        mbytes_per_second=bw / 1e6,
                        bisection_words=stats.bisection_words,
                    )
                )
    return rows


def table_fig8() -> Table:
    """Render Figure 8 as one row per (machine, E) curve."""
    rows = compute_fig8()
    inst = rows[0].instance
    table = Table(
        title=f"Figure 8: required sustained bisection bandwidth, {inst} (MB/s)",
        headers=["machine", "E"] + [f"p={p}" for p in SUBDOMAIN_COUNTS],
    )
    for machine in DEFAULT_MACHINES:
        for eff in DEFAULT_EFFICIENCIES:
            series = [
                r.mbytes_per_second
                for r in rows
                if r.machine == machine.name and r.efficiency == eff
            ]
            table.add_row(machine.name, eff, *[round(v, 1) for v in series])
    worst = max(r.mbytes_per_second for r in rows)
    table.add_note(
        f"worst case {worst:.0f} MB/s; paper's sf2 worst case ~"
        f"{paperdata.PROSE_CLAIMS['bisection_worst_mbytes_per_s']:.0f} MB/s "
        "(modest either way - the paper's point)"
    )
    return table
