"""Section 2.1 — the 1.2 KByte/node runtime memory rule.

Derives bytes/node from the structural memory model for every enabled
instance and compares against the paper's flat rule (and its sf2 ~450
MB example).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro import paperdata
from repro.fem.memory import MemoryModel, memory_model
from repro.tables.common import paper_instances
from repro.tables.render import Table


@dataclass(frozen=True)
class MemoryRow:
    instance: str
    paper_name: str
    model: Optional[MemoryModel]
    paper_rule_mbytes: float  # 1.2 KB/node applied to the *paper's* counts


def compute_memory_rows() -> List[MemoryRow]:
    rows = []
    for inst in paper_instances():
        sizes = paperdata.MESH_SIZES[inst.paper_name]
        paper_mb = paperdata.MEMORY_BYTES_PER_NODE * sizes["nodes"] / 2**20
        model = None
        if inst.is_enabled():
            mesh, _ = inst.build()
            model = memory_model(
                mesh.num_nodes, mesh.num_edges, mesh.num_elements
            )
        rows.append(
            MemoryRow(
                instance=inst.name,
                paper_name=inst.paper_name,
                model=model,
                paper_rule_mbytes=paper_mb,
            )
        )
    return rows


def table_sec2_memory() -> Table:
    table = Table(
        title="Section 2.1: runtime memory (structural model vs 1.2 KB/node rule)",
        headers=[
            "instance",
            "bytes/node (ours)",
            "paper rule (B/node)",
            "total MB (ours)",
            "paper rule MB",
        ],
    )
    for row in compute_memory_rows():
        table.add_row(
            row.instance,
            round(row.model.bytes_per_node) if row.model else "(gated)",
            round(paperdata.MEMORY_BYTES_PER_NODE),
            round(row.model.mbytes, 1) if row.model else "(gated)",
            round(row.paper_rule_mbytes, 1),
        )
    table.add_note(
        f"paper: sf2 requires about {paperdata.SF2_MEMORY_MBYTES:.0f} MB at "
        "runtime"
    )
    return table
