"""Whole-application predictions table (forward use of the models).

For every published application/PE-count at p in {64, 128}, predict the
efficiency, per-SMVP time, and full 6000-step running time on:

* the Cray T3E (measured T_f/T_l/T_w — the machine the paper
  characterized), and
* a hypothetical 200-MFLOP machine with the "balanced" network the
  paper's Figure 11 recommends for sf2/128 at E=0.9.

This is not a paper table — it is the tool the paper's models exist to
enable, and a consistency check: the T3E prediction for sf2 must agree
with the paper's observation that current machines fell far short of
90% efficiency.
"""

from __future__ import annotations

from typing import List

from repro import paperdata
from repro.model.application import ApplicationPrediction, predict_application
from repro.model.inputs import ModelInputs
from repro.model.lowlevel import MAXIMAL_BLOCKS, half_bandwidth_targets
from repro.model.machine import CRAY_T3E, FUTURE_200MFLOPS, Machine
from repro.tables.render import Table

#: PE counts shown in the prediction table.
PE_COUNTS = (64, 128)


def balanced_future_machine() -> Machine:
    """The 200-MFLOP machine with Figure 11's balanced network for
    sf2/128 at E=0.9 (559 MB/s burst, 4.7 us maximal-block latency)."""
    target = half_bandwidth_targets(
        ModelInputs.from_paper("sf2", 128), 0.9, FUTURE_200MFLOPS, MAXIMAL_BLOCKS
    )
    return Machine(
        name="future+balanced-net",
        tf=FUTURE_200MFLOPS.tf,
        tl=target.half_tl,
        tw=target.half_tw,
    )


def compute_predictions() -> List[ApplicationPrediction]:
    machines = (CRAY_T3E, balanced_future_machine())
    rows = []
    for machine in machines:
        for app in paperdata.APPLICATIONS:
            for p in PE_COUNTS:
                inputs = ModelInputs.from_paper(app, p)
                rows.append(predict_application(inputs, machine))
    return rows


def table_prediction() -> Table:
    table = Table(
        title="Whole-application predictions (6000 explicit steps, "
        "published Figure 7 inputs)",
        headers=[
            "application",
            "machine",
            "efficiency",
            "T_smvp (ms)",
            "full run",
            "MFLOPS/PE",
        ],
    )
    for pred in compute_predictions():
        runtime = pred.total_seconds
        if runtime >= 3600:
            run_label = f"{runtime / 3600:.1f} h"
        elif runtime >= 60:
            run_label = f"{runtime / 60:.1f} min"
        else:
            run_label = f"{runtime:.1f} s"
        table.add_row(
            pred.label,
            pred.machine,
            round(pred.efficiency, 3),
            round(pred.t_smvp * 1e3, 3),
            run_label,
            round(pred.sustained_mflops_per_pe, 1),
        )
    table.add_note(
        "the balanced-net machine hits ~0.9 efficiency on sf2/128 by "
        "construction; the T3E's 22 us latency caps small problems far "
        "below that — the paper's thesis, quantified"
    )
    return table
