"""Figure 7 — Quake SMVP properties.

For each (instance, subdomain count): F, C_max, B_max, M_avg, F/C_max,
measured beside the paper's published values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro import paperdata
from repro.stats.properties import SmvpStats
from repro.tables.common import SUBDOMAIN_COUNTS, instance_stats, paper_instances
from repro.tables.render import Table


@dataclass(frozen=True)
class Fig7Row:
    """One (instance, p) cell of Figure 7, measured vs paper."""

    instance: str
    paper_name: str
    num_parts: int
    measured: Optional[SmvpStats]
    paper: paperdata.SmvpProperties


def compute_fig7() -> List[Fig7Row]:
    """All Figure 7 cells for enabled instances (gated ones paper-only)."""
    rows = []
    for inst in paper_instances():
        for p in SUBDOMAIN_COUNTS:
            measured = instance_stats(inst, p) if inst.is_enabled() else None
            rows.append(
                Fig7Row(
                    instance=inst.name,
                    paper_name=inst.paper_name,
                    num_parts=p,
                    measured=measured,
                    paper=paperdata.SMVP_PROPERTIES[(inst.paper_name, p)],
                )
            )
    return rows


def table_fig7() -> Table:
    """Render Figure 7."""
    table = Table(
        title="Figure 7: Quake SMVP properties (measured | paper)",
        headers=[
            "instance",
            "p",
            "F",
            "paper F",
            "C_max",
            "paper C",
            "B_max",
            "paper B",
            "M_avg",
            "paper M",
            "F/C",
            "paper F/C",
        ],
    )
    for row in compute_fig7():
        m = row.measured
        table.add_row(
            row.instance,
            row.num_parts,
            m.F if m else "(gated)",
            row.paper.F,
            m.c_max if m else "(gated)",
            row.paper.C_max,
            m.b_max if m else "(gated)",
            row.paper.B_max,
            round(m.m_avg) if m else "(gated)",
            row.paper.M_avg,
            round(m.f_over_c) if m else "(gated)",
            row.paper.f_over_c,
        )
    table.add_note(
        "C_max always even and divisible by 3 (matched pairwise messages, "
        "3 dof per node)"
    )
    return table
