"""Sections 3.3-3.4 — analytic model vs simulated execution.

For each (instance, p) the barrier-mode BSP simulator executes the
phase structure on Cray T3E communication constants, and the table
shows Equation (2)'s T_comm prediction, the simulated T_comm, their
ratio, and the β bound — demonstrating ``1 <= ratio <= beta``
everywhere (the Section 3.4 guarantee).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.mesh.instances import QuakeInstance
from repro.model.machine import CRAY_T3E, Machine
from repro.partition.base import partition_mesh
from repro.simulate.validate import ModelValidation, validate_model
from repro.smvp.distribution import DataDistribution
from repro.smvp.schedule import CommSchedule
from repro.tables.common import (
    DEFAULT_METHOD,
    SUBDOMAIN_COUNTS,
    enabled_paper_instances,
    instance_stats,
)
from repro.tables.render import Table


@dataclass(frozen=True)
class ValidationRow:
    instance: str
    num_parts: int
    validation: ModelValidation


def compute_validation(
    machine: Machine = CRAY_T3E,
    instances: List[QuakeInstance] = None,
) -> List[ValidationRow]:
    if instances is None:
        instances = enabled_paper_instances()[:2]  # keep the table fast
    rows = []
    for inst in instances:
        mesh, _ = inst.build()
        for p in SUBDOMAIN_COUNTS:
            stats = instance_stats(inst, p)
            partition = partition_mesh(mesh, p, method=DEFAULT_METHOD)
            schedule = CommSchedule(DataDistribution(mesh, partition))
            rows.append(
                ValidationRow(
                    instance=inst.name,
                    num_parts=p,
                    validation=validate_model(
                        stats.f_per_pe, schedule, machine
                    ),
                )
            )
    return rows


def table_validation(machine: Machine = CRAY_T3E) -> Table:
    table = Table(
        title=f"Model vs simulation ({machine.name} constants): "
        "1 <= modeled/simulated <= beta",
        headers=[
            "instance",
            "p",
            "modeled T_comm (us)",
            "simulated T_comm (us)",
            "ratio",
            "beta",
            "holds",
        ],
    )
    for row in compute_validation(machine):
        v = row.validation
        table.add_row(
            row.instance,
            row.num_parts,
            round(v.modeled_t_comm * 1e6, 1),
            round(v.simulated_t_comm * 1e6, 1),
            round(v.ratio, 3),
            round(v.beta, 3),
            v.model_holds,
        )
    return table
