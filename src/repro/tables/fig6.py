"""Figure 6 — computed relative error bounds β on T_c."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro import paperdata
from repro.tables.common import SUBDOMAIN_COUNTS, instance_stats, paper_instances
from repro.tables.render import Table


def compute_betas() -> Dict[Tuple[str, int], Optional[float]]:
    """β for every enabled (instance, subdomain count); None if gated."""
    out: Dict[Tuple[str, int], Optional[float]] = {}
    for inst in paper_instances():
        for p in SUBDOMAIN_COUNTS:
            if inst.is_enabled():
                out[(inst.name, p)] = instance_stats(inst, p).beta
            else:
                out[(inst.name, p)] = None
    return out


def table_fig6() -> Table:
    """Render Figure 6: measured β beside the paper's, per cell."""
    betas = compute_betas()
    instances = paper_instances()
    headers = ["subdomains"]
    for inst in instances:
        headers += [inst.name, f"paper {inst.paper_name}"]
    table = Table(
        title="Figure 6: relative error bounds beta on T_c",
        headers=headers,
    )
    for p in SUBDOMAIN_COUNTS:
        row = [p]
        for inst in instances:
            measured = betas[(inst.name, p)]
            row.append(f"{measured:.2f}" if measured is not None else "(gated)")
            row.append(f"{paperdata.BETA_BOUNDS[(inst.paper_name, p)]:.2f}")
        table.add_row(*row)
    table.add_note("beta is partition-dependent; 1.0 <= beta <= 2.0 always")
    return table
