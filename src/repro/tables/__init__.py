"""Table and figure regeneration.

One module per paper artifact; each exposes a ``compute_*`` function
returning structured rows and a ``table_*`` function rendering them as
an ASCII table with the paper's published values alongside ours.  The
``repro-tables`` CLI and the benchmark suite both drive these.

========================  ============================================
module                     reproduces
========================  ============================================
``fig2``                   Figure 2 — mesh sizes
``fig6``                   Figure 6 — β error bounds
``fig7``                   Figure 7 — SMVP properties
``fig8``                   Figure 8 — bisection bandwidth requirements
``fig9``                   Figure 9 — sustained PE bandwidth
``fig10``                  Figure 10 — latency/burst-bandwidth tradeoff
``fig11``                  Figure 11 — half-bandwidth targets
``sec1_exflow``            Section 1 — EXFLOW vs Quake comparison
``sec2_memory``            Section 2.1 — 1.2 KB/node memory rule
``sec3_tf``                Section 3.1 — T_f measurement
``validation``             Sections 3.3-3.4 — model vs simulation
========================  ============================================
"""

from repro.tables.render import Table

__all__ = ["Table"]
