"""Section 3.1 — measuring T_f on this host.

The paper measured 30 ns/flop (T3D) and 14 ns/flop (T3E) for the local
SMVP.  This table measures the same quantity, the same way (elapsed
time over 2 flops per stored nonzero), for each kernel in our suite on
the host machine, using a realistic local stiffness matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro import paperdata
from repro.fem.assembly import assemble_stiffness
from repro.fem.material import materials_from_model
from repro.mesh.instances import get_instance
from repro.smvp.kernels import TfMeasurement, measure_tf
from repro.tables.render import Table

#: Kernels measured by default; the pure-Python kernel runs on a tiny
#: instance separately because it is ~1000x slower.
FAST_KERNELS = ("csr", "bsr3x3", "symmetric-upper")


@dataclass(frozen=True)
class TfRow:
    measurement: TfMeasurement
    instance: str


def compute_tf_measurements(
    instance: str = "sf10e",
    kernels=FAST_KERNELS,
    repetitions: int = 5,
    include_python: bool = True,
) -> List[TfRow]:
    """Measure T_f for each kernel on a named instance."""
    inst = get_instance(instance)
    mesh, _ = inst.build()
    materials = materials_from_model(mesh, inst.model())
    csr = assemble_stiffness(mesh, materials, fmt="csr")
    bsr = assemble_stiffness(mesh, materials, fmt="bsr")
    rows = []
    for kernel in kernels:
        matrix = bsr if kernel == "bsr3x3" else csr
        rows.append(
            TfRow(
                measurement=measure_tf(matrix, kernel, repetitions=repetitions),
                instance=instance,
            )
        )
    if include_python:
        demo = get_instance("demo")
        demo_mesh, _ = demo.build()
        demo_mat = materials_from_model(demo_mesh, demo.model())
        demo_csr = assemble_stiffness(demo_mesh, demo_mat)
        rows.append(
            TfRow(
                measurement=measure_tf(demo_csr, "python-csr", repetitions=1),
                instance="demo",
            )
        )
    return rows


def table_sec3_tf(instance: str = "sf10e") -> Table:
    table = Table(
        title="Section 3.1: measured T_f for the local SMVP (this host)",
        headers=["kernel", "instance", "nnz", "T_f (ns)", "MFLOPS"],
    )
    for row in compute_tf_measurements(instance):
        m = row.measurement
        table.add_row(
            m.kernel,
            row.instance,
            m.nnz,
            round(m.tf_ns, 2),
            round(m.mflops),
        )
    for name, tf in paperdata.T_F_MEASURED_NS.items():
        table.add_row(f"paper: {name}", "sf*", "-", tf, round(1e3 / tf))
    table.add_note(
        "the paper's T3E sustained 70 MFLOPS = 12% of its 600 MFLOPS peak "
        "on this kernel"
    )
    return table
