"""Figure 11 — half-bandwidth / half-latency targets for the sf2 SMVPs.

Every point is one (subdomain count, machine, efficiency, block mode):
the burst bandwidth and block latency such that each accounts for half
of the communication phase.  Computed from the paper's published
Figure 7 sf2 rows (exact) and from measured sf2e statistics when
enabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro import paperdata
from repro.model.inputs import ModelInputs
from repro.model.lowlevel import (
    MAXIMAL_BLOCKS,
    HalfBandwidthTarget,
    four_word_blocks,
    half_bandwidth_targets,
)
from repro.model.requirements import DEFAULT_MACHINES
from repro.mesh.instances import INSTANCES
from repro.tables.common import SUBDOMAIN_COUNTS, instance_stats
from repro.tables.render import Table

#: Efficiencies plotted in Figure 11.
EFFICIENCIES = (0.5, 0.8, 0.9)


def compute_fig11(source: str = "paper") -> List[HalfBandwidthTarget]:
    """All Figure 11 points from one source ('paper' or 'measured')."""
    if source == "paper":
        inputs_list = [
            ModelInputs.from_paper("sf2", p) for p in SUBDOMAIN_COUNTS
        ]
    elif source == "measured":
        inst = INSTANCES["sf2e"]
        if not inst.is_enabled():
            return []
        inputs_list = [
            ModelInputs.from_stats(instance_stats(inst, p), label=f"sf2e/{p}")
            for p in SUBDOMAIN_COUNTS
        ]
    else:
        raise ValueError("source must be 'paper' or 'measured'")
    points = []
    for mode in (MAXIMAL_BLOCKS, four_word_blocks()):
        for machine in DEFAULT_MACHINES:
            for eff in EFFICIENCIES:
                for inputs in inputs_list:
                    points.append(
                        half_bandwidth_targets(inputs, eff, machine, mode)
                    )
    return points


def table_fig11(source: str = "paper") -> Table:
    """Render Figure 11 for one source."""
    points = compute_fig11(source)
    table = Table(
        title=(
            f"Figure 11: half-bandwidth targets for the sf2 SMVPs ({source})"
        ),
        headers=[
            "point",
            "mode",
            "machine",
            "E",
            "burst MB/s",
            "latency",
        ],
    )
    for pt in points:
        if pt.half_tl >= 1e-3:
            latency = f"{pt.half_tl * 1e3:.2f} ms"
        elif pt.half_tl >= 1e-6:
            latency = f"{pt.half_tl * 1e6:.2f} us"
        else:
            latency = f"{pt.half_tl * 1e9:.0f} ns"
        table.add_row(
            pt.label,
            pt.mode,
            pt.machine,
            pt.efficiency,
            round(pt.burst_bandwidth_bytes / 1e6, 1),
            latency,
        )
    table.add_note(
        "paper extremes: easiest ~3 MB/s burst; hardest ~600 MB/s with "
        "~2 us (maximal) / ~70 ns (4-word) latency"
    )
    return table
