"""Run every table and concatenate the output (the ``repro-tables`` CLI)."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.tables.fig2 import table_fig2
from repro.tables.fig6 import table_fig6
from repro.tables.fig7 import table_fig7
from repro.tables.fig8 import table_fig8
from repro.tables.fig9 import table_fig9
from repro.tables.fig10 import table_fig10a, table_fig10b
from repro.tables.fig11 import table_fig11
from repro.tables.plots import chart_fig9, chart_fig10
from repro.tables.prediction import table_prediction
from repro.tables.reliability import table_reliability
from repro.tables.sec1_exflow import table_sec1_exflow
from repro.tables.sec2_memory import table_sec2_memory
from repro.tables.sec3_tf import table_sec3_tf
from repro.tables.validation import table_validation

#: Registry of table generators, in paper order.
TABLES: Dict[str, Callable] = {
    "fig2": table_fig2,
    "fig6": table_fig6,
    "fig7": table_fig7,
    "fig8": table_fig8,
    "fig9": table_fig9,
    "fig9-chart": chart_fig9,
    "fig10a": table_fig10a,
    "fig10b": table_fig10b,
    "fig10-chart": lambda: chart_fig10("maximal"),
    "fig11": table_fig11,
    "exflow": table_sec1_exflow,
    "memory": table_sec2_memory,
    "tf": table_sec3_tf,
    "validation": table_validation,
    "prediction": table_prediction,
    "reliability": table_reliability,
}


def generate(names: List[str] = None) -> str:
    """Generate the selected tables (default: all) as one text blob."""
    if names is None:
        names = list(TABLES)
    unknown = [n for n in names if n not in TABLES]
    if unknown:
        raise ValueError(f"unknown tables {unknown}; options: {sorted(TABLES)}")
    sections = [str(TABLES[name]()) for name in names]
    return "\n\n".join(sections) + "\n"
