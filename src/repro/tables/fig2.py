"""Figure 2 — sizes of the Quake meshes.

Prints nodes/elements/edges for each synthetic instance next to the
paper's published San Fernando sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro import paperdata
from repro.tables.common import paper_instances
from repro.tables.render import Table


@dataclass(frozen=True)
class MeshSizeRow:
    """One instance's measured-vs-paper mesh sizes."""

    instance: str
    paper_name: str
    nodes: Optional[int]
    elements: Optional[int]
    edges: Optional[int]
    paper_nodes: int
    paper_elements: int
    paper_edges: int

    @property
    def node_ratio(self) -> Optional[float]:
        if self.nodes is None:
            return None
        return self.nodes / self.paper_nodes


def compute_mesh_sizes() -> List[MeshSizeRow]:
    """Build every enabled instance and collect its sizes."""
    rows = []
    for inst in paper_instances():
        paper = paperdata.MESH_SIZES[inst.paper_name]
        if inst.is_enabled():
            mesh, _ = inst.build()
            rows.append(
                MeshSizeRow(
                    instance=inst.name,
                    paper_name=inst.paper_name,
                    nodes=mesh.num_nodes,
                    elements=mesh.num_elements,
                    edges=mesh.num_edges,
                    paper_nodes=paper["nodes"],
                    paper_elements=paper["elements"],
                    paper_edges=paper["edges"],
                )
            )
        else:
            rows.append(
                MeshSizeRow(
                    instance=inst.name,
                    paper_name=inst.paper_name,
                    nodes=None,
                    elements=None,
                    edges=None,
                    paper_nodes=paper["nodes"],
                    paper_elements=paper["elements"],
                    paper_edges=paper["edges"],
                )
            )
    return rows


def table_fig2() -> Table:
    """Render Figure 2 (measured vs paper)."""
    table = Table(
        title="Figure 2: Sizes of the Quake meshes (measured vs paper)",
        headers=[
            "instance",
            "nodes",
            "paper nodes",
            "elements",
            "paper elems",
            "edges",
            "paper edges",
        ],
    )
    for row in compute_mesh_sizes():
        table.add_row(
            row.instance,
            row.nodes if row.nodes is not None else "(gated)",
            row.paper_nodes,
            row.elements if row.elements is not None else "(gated)",
            row.paper_elements,
            row.edges if row.edges is not None else "(gated)",
            row.paper_edges,
        )
    table.add_note(
        "synthetic basin calibrated per instance; see DESIGN.md for the "
        "substitution rationale"
    )
    return table
