"""Section 1 — EXFLOW vs Quake comparison table.

The paper compares EXFLOW (a 512-PE unstructured CFD code from Cypher
et al.) with Quake sf2/128 on four machine-independent ratios.  We
reproduce the Quake column from our measured sf2e/128 statistics (or
show the paper's when gated) next to the published EXFLOW and Quake
values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import paperdata
from repro.mesh.instances import INSTANCES
from repro.stats.exflow import ExflowStyleStats
from repro.tables.common import instance_exflow_stats
from repro.tables.render import Table

_NUM_PARTS = 128


@dataclass(frozen=True)
class ExflowComparison:
    """The three columns of the Section 1 comparison."""

    exflow: dict
    paper_quake: dict
    measured: Optional[ExflowStyleStats]


def compute_exflow_comparison() -> ExflowComparison:
    inst = INSTANCES["sf2e"]
    measured = (
        instance_exflow_stats(inst, _NUM_PARTS) if inst.is_enabled() else None
    )
    return ExflowComparison(
        exflow=paperdata.EXFLOW_COMPARISON["exflow"],
        paper_quake=paperdata.EXFLOW_COMPARISON["quake_sf2_128"],
        measured=measured,
    )


def table_sec1_exflow() -> Table:
    cmp = compute_exflow_comparison()
    table = Table(
        title="Section 1: EXFLOW vs Quake (sf2/128) communication character",
        headers=["quantity", "EXFLOW (paper)", "Quake (paper)", "sf2e/128 (ours)"],
    )
    m = cmp.measured

    def ours(value):
        return round(value, 1) if m is not None else "(gated)"

    table.add_row(
        "data per PE (MB)",
        cmp.exflow["mbytes_per_pe"],
        cmp.paper_quake["mbytes_per_pe"],
        ours(m.mbytes_per_pe) if m else "(gated)",
    )
    table.add_row(
        "comm KB per MFLOP",
        cmp.exflow["comm_kbytes_per_mflop"],
        cmp.paper_quake["comm_kbytes_per_mflop"],
        ours(m.comm_kbytes_per_mflop) if m else "(gated)",
    )
    table.add_row(
        "messages per MFLOP",
        cmp.exflow["messages_per_mflop"],
        cmp.paper_quake["messages_per_mflop"],
        ours(m.messages_per_mflop) if m else "(gated)",
    )
    table.add_row(
        "avg message size (KB)",
        cmp.exflow["avg_message_kbytes"],
        cmp.paper_quake["avg_message_kbytes"],
        ours(m.avg_message_kbytes) if m else "(gated)",
    )
    table.add_note(
        "the paper's point: two unstructured FE codes from different "
        "domains, nearly identical communication character"
    )
    return table
