"""Reliability sweep — the experiment axis the paper never ran.

The paper's Equations (1)/(2) predict SMVP time on a *perfect* machine:
no stragglers, no lost blocks, no restarts.  This table sweeps a seeded
fault rate through the BSP simulator (barrier mode, the paper's model)
and reports, per instance, how runtime and efficiency degrade relative
to the fault-free Equation (1)/(2) prediction — quantifying how much
the paper's 6000-superstep efficiency story depends on the
perfect-network assumption.

A companion table exercises the *data* path: the distributed executor
runs its checksummed retransmitting exchange under injected faults and
reports detection/recovery counts plus the end-to-end residual against
the global sequential product.

CLI: ``repro-faults`` (``--smoke`` for the CI-sized variant).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro import paperdata
from repro.faults import FaultConfig, FaultInjector
from repro.faults.detection import FaultStats, residual_relative_error
from repro.mesh.instances import INSTANCES
from repro.model.machine import CRAY_T3E, Machine
from repro.partition.base import partition_mesh
from repro.simulate.bsp import BspSimulator
from repro.smvp.abft import verify_flops_per_pe
from repro.smvp.distribution import DataDistribution
from repro.smvp.schedule import CommSchedule
from repro.tables.common import DEFAULT_METHOD
from repro.tables.render import Table

#: Fault rates swept by default (0 = the paper's perfect machine).
DEFAULT_RATES: Tuple[float, ...] = (0.0, 0.001, 0.01, 0.05)

#: Instances swept by default — both build in seconds.
DEFAULT_INSTANCES: Tuple[str, ...] = ("sf10e", "sf5e")

_SETUP_CACHE: Dict[
    Tuple[str, int, str], Tuple[np.ndarray, CommSchedule, np.ndarray]
] = {}


def _setup(
    instance_name: str, num_parts: int, method: str
) -> Tuple[np.ndarray, CommSchedule, np.ndarray]:
    """Memoized (flops, schedule, abft verify flops) per instance."""
    key = (instance_name, num_parts, method)
    if key not in _SETUP_CACHE:
        mesh, _ = INSTANCES[instance_name].build()
        partition = partition_mesh(mesh, num_parts, method=method)
        dist = DataDistribution(mesh, partition)
        schedule = CommSchedule(dist)
        _SETUP_CACHE[key] = (
            dist.local_counts["flops"].astype(np.float64),
            schedule,
            verify_flops_per_pe(dist, schedule),
        )
    return _SETUP_CACHE[key]


def clear_caches() -> None:
    """Drop memoized setups (tests use this)."""
    _SETUP_CACHE.clear()


@dataclass(frozen=True)
class ReliabilityPoint:
    """Aggregated simulation of one (instance, fault rate) cell."""

    instance: str
    num_parts: int
    rate: float
    t_step: float  # mean simulated seconds per SMVP superstep
    efficiency: float  # aggregate T_comp / T_smvp over the sampled steps
    slowdown: float  # t_step / fault-free t_step
    retransmits_per_step: float
    stragglers_per_step: float
    pe_failures_per_step: float
    sdc_per_step: float = 0.0  # injected silent corruptions
    sdc_detected_per_step: float = 0.0

    def total_seconds(self, num_steps: int = paperdata.NUM_TIME_STEPS) -> float:
        """Extrapolated whole-run time (the paper's 6000 supersteps)."""
        return self.t_step * num_steps


def simulate_reliability(
    instance: str,
    num_parts: int,
    rate: float,
    machine: Machine = CRAY_T3E,
    num_steps: int = 20,
    seed: int = 0,
    method: str = DEFAULT_METHOD,
) -> ReliabilityPoint:
    """Sample ``num_steps`` supersteps at one fault rate and aggregate.

    ``rate`` drives :meth:`FaultConfig.uniform`; rate 0 runs the exact
    fault-free simulator path, so the baseline row *is* the seed
    behaviour, not a degenerate fault run.
    """
    flops, schedule, verify_flops = _setup(instance, num_parts, method)
    injector = None
    if rate > 0:
        injector = FaultInjector(FaultConfig.uniform(rate, seed=seed))
    sim = BspSimulator(
        flops,
        schedule,
        machine,
        injector=injector,
        # With faults in play the machine runs ABFT-protected (the
        # T_verify overhead is part of the honest cost of surviving);
        # rate 0 models the paper's unprotected perfect machine and
        # stays bit-identical to the seed simulator.
        abft_flops_per_pe=verify_flops if injector is not None else None,
    )
    baseline = BspSimulator(flops, schedule, machine).run("barrier")
    total_comp = total_smvp = 0.0
    stats = FaultStats()
    for step in range(num_steps):
        times = sim.run("barrier", step=step)
        total_comp += times.t_comp
        total_smvp += times.t_smvp
        if times.faults is not None:
            stats = stats.merge(times.faults)
    t_step = total_smvp / num_steps
    return ReliabilityPoint(
        instance=instance,
        num_parts=num_parts,
        rate=rate,
        t_step=t_step,
        efficiency=total_comp / total_smvp if total_smvp else 1.0,
        slowdown=t_step / baseline.t_smvp if baseline.t_smvp else 1.0,
        retransmits_per_step=stats.retransmits / num_steps,
        stragglers_per_step=stats.straggler_events / num_steps,
        pe_failures_per_step=stats.pe_failures / num_steps,
        sdc_per_step=stats.injected_sdc / num_steps,
        sdc_detected_per_step=stats.detected_sdc / num_steps,
    )


def table_reliability(
    instances: Sequence[str] = DEFAULT_INSTANCES,
    num_parts: int = 32,
    rates: Sequence[float] = DEFAULT_RATES,
    machine: Machine = CRAY_T3E,
    num_steps: int = 20,
    seed: int = 0,
    method: str = DEFAULT_METHOD,
) -> Table:
    """Render the fault-rate × efficiency/runtime reliability sweep."""
    machine.require_comm("the reliability sweep")
    table = Table(
        title=(
            f"Reliability: fault-rate sweep on {machine.name} "
            f"(p={num_parts}, {num_steps} sampled supersteps)"
        ),
        headers=[
            "instance",
            "rate",
            "t_step ms",
            "E",
            "slowdown",
            "retx/step",
            "stragglers/step",
            "sdc/step",
            "run(6000) s",
        ],
    )
    for name in instances:
        inst = INSTANCES[name]
        if not inst.is_enabled():
            table.add_note(
                f"{name} disabled (set {inst.gate}=1); skipped"
            )
            continue
        for rate in rates:
            point = simulate_reliability(
                name,
                num_parts,
                rate,
                machine=machine,
                num_steps=num_steps,
                seed=seed,
                method=method,
            )
            table.add_row(
                name,
                rate,
                1e3 * point.t_step,
                round(point.efficiency, 3),
                round(point.slowdown, 3),
                round(point.retransmits_per_step, 2),
                round(point.stragglers_per_step, 2),
                round(point.sdc_per_step, 2),
                round(point.total_seconds(), 1),
            )
    table.add_note(
        "rate 0 is the paper's perfect machine (Equations (1)/(2) "
        "regime); slowdown is vs that baseline"
    )
    table.add_note(
        "faults per FaultConfig.uniform(rate): stragglers+drops at rate, "
        "corruption/duplication at rate/2, PE crashes at rate/10, "
        "SDC bit-flips (x/y at rate/5, K at rate/10)"
    )
    table.add_note(
        "faulty rows run ABFT-protected: every modeled SDC is detected "
        "and recomputed, and T_verify is included in their t_step"
    )
    return table


def table_fault_recovery(
    instance: str = "demo",
    num_parts: int = 8,
    rate: float = 0.05,
    num_exchanges: int = 5,
    seed: int = 0,
) -> Table:
    """Render the data-path detection/recovery check (executor level).

    Runs the distributed executor's full verified superstep — ABFT
    checks on, the checksummed exchange, and the SDC bit-flip modes of
    :meth:`FaultConfig.uniform` — for several supersteps, and shows
    that every injected fault (in flight *and* in memory) was detected
    and recovered, with the product still matching the global
    sequential SMVP.
    """
    from repro.fem.assembly import assemble_stiffness
    from repro.fem.material import materials_from_model
    from repro.smvp.executor import DistributedSMVP

    inst = INSTANCES[instance]
    mesh, _ = inst.build()
    materials = materials_from_model(mesh, inst.model())
    stiffness = assemble_stiffness(mesh, materials)
    partition = partition_mesh(mesh, num_parts, method=DEFAULT_METHOD)
    injector = FaultInjector(FaultConfig.uniform(rate, seed=seed))
    smvp = DistributedSMVP(
        mesh, partition, materials, injector=injector, abft=True
    )

    rng = np.random.default_rng(seed)
    max_err = 0.0
    for _ in range(num_exchanges):
        x = rng.standard_normal(3 * mesh.num_nodes)
        err = residual_relative_error(smvp.multiply(x), stiffness @ x)
        max_err = max(max_err, err)
    # In-flight faults accumulate on the transport side, memory/compute
    # corruption on the SDC side; one merged tally covers both paths.
    stats = smvp.transport_stats.merge(smvp.sdc_stats)

    table = Table(
        title=(
            f"Fault recovery: {instance}/p={num_parts} executor, "
            f"rate={rate}, {num_exchanges} exchanges"
        ),
        headers=["quantity", "value"],
    )
    table.add_row("blocks dropped (injected)", stats.injected_drops)
    table.add_row("  detected by timeout", stats.detected_missing)
    table.add_row("blocks corrupted (injected)", stats.injected_corruptions)
    table.add_row("  detected by checksum", stats.detected_corrupt)
    table.add_row("blocks duplicated (injected)", stats.injected_duplicates)
    table.add_row("  deduplicated at receiver", stats.duplicates_ignored)
    table.add_row("retransmissions", stats.retransmits)
    table.add_row("words retransmitted", stats.words_retransmitted)
    table.add_row("SDC bit-flips (injected)", stats.injected_sdc)
    table.add_row("  detected by ABFT checksum", stats.detected_sdc)
    table.add_row("  healed by recompute", stats.recomputed_sdc)
    table.add_row("  matrix blocks scrubbed", stats.repaired_blocks)
    table.add_row("  escaped undetected", stats.escaped_sdc)
    table.add_row("every fault recovered", stats.fully_recovered())
    table.add_row("every SDC contained", stats.sdc_contained)
    table.add_row("max residual vs global SMVP", max_err)
    table.add_note(
        "residual is bit-identical to the fault-free product whenever "
        "recovery succeeds (retransmits resend the intact partial; ABFT "
        "recomputes heal corrupted products exactly)"
    )
    return table
