"""Figure 10 — burst bandwidth / latency tradeoffs for sf2/128.

For each efficiency line, prints the maximum tolerable block latency at
a grid of burst bandwidths (including infinite), for (a) maximal blocks
and (b) fixed four-word blocks, on the 200-MFLOP machine — exactly the
two panels of the paper's figure.
"""

from __future__ import annotations

from typing import List, Tuple

from repro import paperdata
from repro.model.inputs import ModelInputs
from repro.model.lowlevel import (
    BlockMode,
    MAXIMAL_BLOCKS,
    four_word_blocks,
    latency_for_tradeoff,
)
from repro.model.machine import FUTURE_200MFLOPS
from repro.tables.render import Table

#: Burst bandwidths (MB/s) sampled for the table columns.
BURST_GRID_MBYTES = (50.0, 100.0, 200.0, 400.0, 600.0, 1000.0, 4000.0, float("inf"))

#: Efficiency lines of the figure.
EFFICIENCIES = paperdata.EFFICIENCY_TARGETS


def compute_panel(
    mode: BlockMode, inputs: ModelInputs = None
) -> List[Tuple[float, List[float]]]:
    """Rows of (efficiency, latencies in seconds per burst-grid column).

    Negative entries mean "infeasible at that burst bandwidth".
    """
    if inputs is None:
        inputs = ModelInputs.from_paper("sf2", 128)
    rows = []
    for eff in EFFICIENCIES:
        lat = []
        for bw_mb in BURST_GRID_MBYTES:
            tw = 0.0 if bw_mb == float("inf") else paperdata.BYTES_PER_WORD / (
                bw_mb * 1e6
            )
            lat.append(
                latency_for_tradeoff(inputs, eff, FUTURE_200MFLOPS, tw, mode)
            )
        rows.append((eff, lat))
    return rows


def _panel_table(title: str, mode: BlockMode, unit_scale: float, unit: str) -> Table:
    table = Table(
        title=title,
        headers=["E"]
        + [
            "inf" if bw == float("inf") else f"{bw:.0f}MB/s"
            for bw in BURST_GRID_MBYTES
        ],
    )
    for eff, latencies in compute_panel(mode):
        cells = [
            "infeasible" if t < 0 else round(t * unit_scale, 2)
            for t in latencies
        ]
        table.add_row(eff, *cells)
    return table


def table_fig10a() -> Table:
    """Panel (a): maximal blocks; latencies in microseconds."""
    t = _panel_table(
        "Figure 10(a): max block latency vs burst bandwidth, sf2/128, "
        "200 MFLOPS, maximal blocks (us)",
        MAXIMAL_BLOCKS,
        1e6,
        "us",
    )
    t.add_note(
        "paper prose quotes ~3 us at infinite burst for E=0.9; Equation (2) "
        "on the published Figure 7 row gives 9.3 us — see EXPERIMENTS.md"
    )
    return t


def table_fig10b() -> Table:
    """Panel (b): four-word blocks; latencies in nanoseconds."""
    t = _panel_table(
        "Figure 10(b): max block latency vs burst bandwidth, sf2/128, "
        "200 MFLOPS, 4-word blocks (ns)",
        four_word_blocks(),
        1e9,
        "ns",
    )
    t.add_note("paper prose: ~100 ns at infinite burst for E=0.9")
    return t
