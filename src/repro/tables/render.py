"""Minimal ASCII table rendering.

No third-party table library: a ``Table`` is a title, column headers,
and rows of cells; ``str(table)`` right-aligns numbers, left-aligns
text, and keeps the output diff-friendly (benchmarks tee their tables
into EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence


def format_cell(value) -> str:
    """Human formatting: thousands separators for ints, 3 significant
    figures for floats, pass-through for strings."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000:
            return f"{value:,.0f}"
        if magnitude >= 1:
            return f"{value:.3g}"
        return f"{value:.3g}"
    return str(value)


@dataclass
class Table:
    """An ASCII table with a title and aligned columns."""

    title: str
    headers: Sequence[str]
    rows: List[Sequence] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(cells)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def __str__(self) -> str:
        cells = [[format_cell(c) for c in row] for row in self.rows]
        headers = [str(h) for h in self.headers]
        widths = [len(h) for h in headers]
        for row in cells:
            for i, c in enumerate(row):
                widths[i] = max(widths[i], len(c))
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * max(len(self.title), 1)]
        lines.append(
            " | ".join(h.ljust(w) for h, w in zip(headers, widths))
        )
        lines.append(sep)
        for raw, row in zip(self.rows, cells):
            formatted = []
            for value, text, w in zip(raw, row, widths):
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    formatted.append(text.rjust(w))
                else:
                    formatted.append(text.ljust(w))
            lines.append(" | ".join(formatted))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)
