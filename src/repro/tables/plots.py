"""ASCII charts for the paper's figures.

The paper presents Figures 8-10 as line plots; the table modules print
their exact values, and this module renders the same series as
terminal charts so the *shape* (crossovers, slopes, the latency wall)
is visible at a glance with no plotting dependencies.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro import paperdata
from repro.model.inputs import ModelInputs
from repro.model.lowlevel import MAXIMAL_BLOCKS, four_word_blocks, latency_for_tradeoff
from repro.model.machine import CURRENT_100MFLOPS, FUTURE_200MFLOPS
from repro.model.requirements import pe_bandwidth_requirement_rows

Series = Dict[str, List[Tuple[float, float]]]

#: Symbols assigned to series in order.
_SYMBOLS = "ox*+#@%&"


def ascii_chart(
    series: Series,
    title: str,
    width: int = 64,
    height: int = 18,
    log_x: bool = False,
    log_y: bool = False,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named (x, y) series on one character grid.

    Points outside a log scale's domain (<= 0) are dropped.  Returns a
    multi-line string with axis annotations and a legend.
    """
    points = []
    for values in series.values():
        for x, y in values:
            if (log_x and x <= 0) or (log_y and y <= 0):
                continue
            if math.isinf(x) or math.isinf(y):
                continue
            points.append((x, y))
    if not points:
        raise ValueError("nothing to plot")

    def tx(x: float) -> float:
        return math.log10(x) if log_x else x

    def ty(y: float) -> float:
        return math.log10(y) if log_y else y

    xs = [tx(x) for x, _ in points]
    ys = [ty(y) for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for idx, (name, values) in enumerate(series.items()):
        symbol = _SYMBOLS[idx % len(_SYMBOLS)]
        legend.append(f"{symbol} = {name}")
        for x, y in values:
            if (log_x and x <= 0) or (log_y and y <= 0):
                continue
            if math.isinf(x) or math.isinf(y):
                continue
            col = round((tx(x) - x_lo) / x_span * (width - 1))
            row = round((ty(y) - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = symbol

    def fmt(v: float) -> str:
        return f"{v:.3g}"

    lines = [title]
    top = fmt(10**y_hi if log_y else y_hi)
    bottom = fmt(10**y_lo if log_y else y_lo)
    margin = max(len(top), len(bottom), len(y_label)) + 1
    lines.append(f"{y_label.rjust(margin)}")
    for r, row in enumerate(grid):
        label = top if r == 0 else (bottom if r == height - 1 else "")
        lines.append(f"{label.rjust(margin)}|{''.join(row)}")
    left = fmt(10**x_lo if log_x else x_lo)
    right = fmt(10**x_hi if log_x else x_hi)
    lines.append(" " * margin + "+" + "-" * width)
    lines.append(
        " " * margin
        + left
        + right.rjust(width - len(left))
        + f"   {x_label}"
    )
    lines.append("  " + "   ".join(legend))
    return "\n".join(lines)


def chart_fig9() -> str:
    """Figure 9 as a chart: required PE bandwidth vs subdomain count."""
    inputs = [ModelInputs.from_paper("sf2", p) for p in paperdata.SUBDOMAIN_COUNTS]
    rows = pe_bandwidth_requirement_rows(inputs)
    series: Series = {}
    for machine in (CURRENT_100MFLOPS, FUTURE_200MFLOPS):
        for eff in (0.5, 0.8, 0.9):
            key = f"{machine.mflops:.0f}MF E={eff}"
            series[key] = [
                (r.num_parts, r.mbytes_per_second)
                for r in rows
                if r.machine == machine.name and r.efficiency == eff
            ]
    return ascii_chart(
        series,
        title="Figure 9 (chart): required sustained PE bandwidth, sf2",
        log_x=True,
        log_y=True,
        x_label="subdomains",
        y_label="MB/s",
    )


def chart_fig10(mode_name: str = "maximal") -> str:
    """Figure 10 as a chart: latency wall vs burst bandwidth, sf2/128."""
    inputs = ModelInputs.from_paper("sf2", 128)
    mode = MAXIMAL_BLOCKS if mode_name == "maximal" else four_word_blocks()
    unit = 1e6 if mode_name == "maximal" else 1e9
    unit_name = "us" if mode_name == "maximal" else "ns"
    series: Series = {}
    bandwidths = [50e6 * (1.5**k) for k in range(14)]
    for eff in paperdata.EFFICIENCY_TARGETS:
        pts = []
        for bw in bandwidths:
            tl = latency_for_tradeoff(
                inputs, eff, FUTURE_200MFLOPS, paperdata.BYTES_PER_WORD / bw, mode
            )
            if tl > 0:
                pts.append((bw / 1e6, tl * unit))
        series[f"E={eff}"] = pts
    return ascii_chart(
        series,
        title=(
            f"Figure 10 (chart): max block latency ({unit_name}) vs burst "
            f"bandwidth, sf2/128, {mode_name} blocks"
        ),
        log_x=True,
        log_y=True,
        x_label="burst MB/s",
        y_label=unit_name,
    )
