"""Aggregated profiler reports: blame table, folded stacks, snapshots.

``build_report`` folds per-superstep :class:`SuperstepProfile` records
into one run-level :class:`ProfileReport`; ``render_report`` prints the
blame table the ``repro-profile`` CLI shows, ``render_folded`` emits
flamegraph folded stacks (``stack;frames count`` with integer
microsecond counts), ``snapshot`` / ``compare_snapshots`` implement the
JSON artifact and the noise-aware ``--regress`` gate.

The regression threshold adapts to run noise: with per-step ``t_smvp``
samples in the old snapshot, the gate uses ``max(base, 2 * CV)`` where
CV is the old run's coefficient of variation — a noisy baseline earns
a wider band instead of flaking.  Only *slowdowns* fail; getting
faster never does.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.profile.critical_path import (
    BUCKETS,
    SuperstepProfile,
    analyze_log,
)

#: Snapshot format marker (independent of the trace-log schema).
SNAPSHOT_SCHEMA = "repro-profile/1"

#: Baseline relative slowdown tolerated by ``compare_snapshots``.
DEFAULT_REGRESS_THRESHOLD = 0.10

#: Buckets smaller than this share of the old total are not gated —
#: a 3x jump in a microscopic bucket is noise, not a regression.
MIN_GATED_SHARE = 0.05


@dataclass
class ProfileReport:
    """Run-level aggregation of per-superstep profiles."""

    backend: str
    kernel: str
    steps: int
    rhs: int
    t_total: float
    buckets: Dict[str, float]
    pe_compute: Dict[int, float]
    straggler: Dict[int, float]
    overlap_efficiency: Optional[float]
    identity_max_err: float
    per_step_t_smvp: List[float]
    wire: Dict[str, float]
    profiles: List[SuperstepProfile] = field(default_factory=list)


def build_report(traces) -> ProfileReport:
    """Aggregate every profiled trace in ``traces`` (a TraceLog or a
    plain sequence of SuperstepTrace)."""
    traces = list(getattr(traces, "traces", traces))
    profiles = analyze_log(traces)
    if not profiles:
        raise ValueError(
            "no profiled supersteps: traces carry no pe_spans "
            "(run with profile enabled)"
        )
    by_step = {
        t.step: t for t in traces if getattr(t, "pe_spans", None)
    }
    buckets = {name: 0.0 for name in BUCKETS}
    pe_compute: Dict[int, float] = {}
    identity_max = 0.0
    eff_num = 0.0
    eff_den = 0.0
    messages = 0
    words = 0
    for p in profiles:
        for name, v in p.buckets.items():
            buckets[name] = buckets.get(name, 0.0) + v
        for pe, v in sorted(p.pe_compute.items()):
            pe_compute[pe] = pe_compute.get(pe, 0.0) + v
        identity_max = max(identity_max, p.identity_error)
        if p.overlap_efficiency is not None:
            wire_total = (
                p.wire_fit.messages * p.wire_fit.latency_per_msg
                + p.wire_fit.words * p.wire_fit.seconds_per_word
            )
            weight = wire_total if wire_total > 0.0 else 1.0
            eff_num += p.overlap_efficiency * weight
            eff_den += weight
        messages += p.wire_fit.messages
        words += p.wire_fit.words
    straggler: Dict[int, float] = {}
    if pe_compute:
        ordered = sorted(pe_compute.values())
        mid = len(ordered) // 2
        if len(ordered) % 2:
            median = ordered[mid]
        else:
            median = 0.5 * (ordered[mid - 1] + ordered[mid])
        for pe, v in sorted(pe_compute.items()):
            straggler[pe] = v / median if median > 0.0 else 1.0
    n = len(profiles)
    mean_a = (
        sum(p.wire_fit.latency_per_msg for p in profiles) / n
    )
    mean_b = (
        sum(p.wire_fit.seconds_per_word for p in profiles) / n
    )
    last = by_step[profiles[-1].step]
    return ProfileReport(
        backend=profiles[-1].backend,
        kernel=getattr(last, "kernel", "csr"),
        steps=n,
        rhs=int(getattr(last, "rhs", 1)),
        t_total=sum(p.t_smvp for p in profiles),
        buckets=buckets,
        pe_compute=pe_compute,
        straggler=straggler,
        overlap_efficiency=(
            eff_num / eff_den if eff_den > 0.0 else None
        ),
        identity_max_err=identity_max,
        per_step_t_smvp=[p.t_smvp for p in profiles],
        wire={
            "latency_per_msg": mean_a,
            "seconds_per_word": mean_b,
            "messages": float(messages),
            "words": float(words),
        },
        profiles=profiles,
    )


def render_report(
    report: ProfileReport, modeled: Optional[Dict[str, float]] = None
) -> str:
    """The human-readable blame table."""
    lines = [
        f"critical-path profile: {report.steps} supersteps, "
        f"backend={report.backend}, kernel={report.kernel}, "
        f"rhs={report.rhs}",
        "",
        f"{'bucket':<12} {'seconds':>12} {'share':>7}"
        + ("" if modeled is None else f" {'modeled':>12}"),
    ]
    total = report.t_total or 1.0
    for name in BUCKETS:
        v = report.buckets.get(name, 0.0)
        row = f"{name:<12} {v:>12.6f} {v / total:>6.1%}"
        if modeled is not None:
            row += f" {modeled.get(name, 0.0):>12.6f}"
        lines.append(row)
    lines.append(
        f"{'total':<12} {report.t_total:>12.6f} {'100.0%':>7}"
        + (
            ""
            if modeled is None
            else f" {modeled.get('total', 0.0):>12.6f}"
        )
    )
    lines.append(
        f"critical-path identity: max |path - t_smvp| = "
        f"{report.identity_max_err:.3e} s"
    )
    if report.overlap_efficiency is not None:
        lines.append(
            f"overlap efficiency: {report.overlap_efficiency:.1%} of "
            "wire time hidden behind foreground compute"
        )
    if report.pe_compute:
        lines.append("")
        lines.append(
            f"{'PE':>4} {'compute s':>12} {'straggler':>10}"
        )
        for pe in sorted(report.pe_compute):
            lines.append(
                f"{pe:>4} {report.pe_compute[pe]:>12.6f} "
                f"{report.straggler[pe]:>10.2f}"
            )
    if report.wire["messages"] > 0:
        lines.append(
            f"wire fit: {report.wire['latency_per_msg']:.3e} s/msg + "
            f"{report.wire['seconds_per_word']:.3e} s/word over "
            f"{int(report.wire['messages'])} messages / "
            f"{int(report.wire['words'])} words"
        )
    return "\n".join(lines)


def render_folded(traces) -> str:
    """Flamegraph folded stacks, aggregated over the run.

    One line per distinct stack, count = total integer microseconds.
    Host windows self-time is the window minus its contained per-PE
    spans; per-PE and wire spans get child frames.  Wire spans run on
    their own thread on the overlapped path, so they fold under a
    top-level ``wire`` root rather than under a superstep phase.
    """
    traces = list(getattr(traces, "traces", traces))
    agg: Dict[str, float] = {}

    def bump(stack: str, seconds: float) -> None:
        if seconds > 0.0:
            agg[stack] = agg.get(stack, 0.0) + seconds

    for trace in traces:
        spans = getattr(trace, "pe_spans", None)
        if spans is None:
            continue
        pe_spans = [s for s in spans if s.pe >= 0]
        for window in spans.host_windows():
            contained = 0.0
            for s in pe_spans:
                if s.kind == "wire":
                    continue
                d = s.overlap(window.t_start, window.t_end)
                if d > 0.0:
                    bump(f"smvp;{window.kind};PE{s.pe}", d)
                    contained += d
            bump(
                f"smvp;{window.kind}",
                max(window.duration - contained, 0.0),
            )
        for s in pe_spans:
            if s.kind == "wire":
                bump(f"wire;{s.pe}->{s.dst}", s.duration)
    lines = []
    for stack in sorted(agg):
        us = int(round(agg[stack] * 1e6))
        if us > 0:
            lines.append(f"{stack} {us}")
    return "\n".join(lines) + "\n"


def snapshot(
    report: ProfileReport, meta: Optional[dict] = None
) -> dict:
    """JSON-ready snapshot for ``--json`` / ``--regress``."""
    return {
        "schema": SNAPSHOT_SCHEMA,
        "meta": dict(meta or {}),
        "backend": report.backend,
        "kernel": report.kernel,
        "steps": report.steps,
        "rhs": report.rhs,
        "t_total": report.t_total,
        "buckets": dict(report.buckets),
        "pe_compute": {
            str(pe): v for pe, v in sorted(report.pe_compute.items())
        },
        "straggler": {
            str(pe): v for pe, v in sorted(report.straggler.items())
        },
        "overlap_efficiency": report.overlap_efficiency,
        "identity_max_err": report.identity_max_err,
        "per_step_t_smvp": list(report.per_step_t_smvp),
        "wire": dict(report.wire),
    }


def render_snapshot(
    report: ProfileReport, meta: Optional[dict] = None
) -> str:
    return json.dumps(snapshot(report, meta), indent=2, sort_keys=True)


def load_snapshot(text: str) -> dict:
    payload = json.loads(text)
    schema = payload.get("schema")
    if schema != SNAPSHOT_SCHEMA:
        raise ValueError(
            f"unsupported profile snapshot schema {schema!r} "
            f"(expected {SNAPSHOT_SCHEMA!r})"
        )
    return payload


def _noise_threshold(old: dict, base: float) -> float:
    steps = [float(v) for v in old.get("per_step_t_smvp", [])]
    if len(steps) < 2:
        return base
    mean = sum(steps) / len(steps)
    if mean <= 0.0:
        return base
    var = sum((s - mean) ** 2 for s in steps) / (len(steps) - 1)
    cv = math.sqrt(var) / mean
    return max(base, 2.0 * cv)


def compare_snapshots(
    old: dict,
    new: dict,
    base_threshold: float = DEFAULT_REGRESS_THRESHOLD,
) -> Tuple[bool, List[str]]:
    """Noise-aware regression gate between two snapshots.

    Returns ``(ok, lines)``; ``ok`` is False when the new total, or any
    bucket carrying at least :data:`MIN_GATED_SHARE` of the old total,
    slowed down by more than the (noise-widened) threshold.
    """
    threshold = _noise_threshold(old, base_threshold)
    lines = [
        f"regression threshold: {threshold:.1%} "
        f"(base {base_threshold:.1%}, noise-adjusted from "
        f"{len(old.get('per_step_t_smvp', []))} old steps)"
    ]
    ok = True
    old_total = float(old.get("t_total", 0.0))
    new_total = float(new.get("t_total", 0.0))
    checks: List[Tuple[str, float, float]] = [
        ("t_total", old_total, new_total)
    ]
    old_buckets = old.get("buckets", {})
    new_buckets = new.get("buckets", {})
    for name in sorted(old_buckets):
        old_v = float(old_buckets[name])
        if old_total > 0.0 and old_v < MIN_GATED_SHARE * old_total:
            continue
        checks.append(
            (f"bucket:{name}", old_v, float(new_buckets.get(name, 0.0)))
        )
    for name, old_v, new_v in checks:
        if old_v <= 0.0:
            lines.append(f"  {name}: old=0, skipped")
            continue
        ratio = new_v / old_v
        verdict = "ok"
        if ratio > 1.0 + threshold:
            verdict = "REGRESSION"
            ok = False
        lines.append(
            f"  {name}: {old_v:.6f}s -> {new_v:.6f}s "
            f"({ratio - 1.0:+.1%}) [{verdict}]"
        )
    return ok, lines
