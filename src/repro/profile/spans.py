"""Per-PE span recording for the critical-path profiler.

A *span* is one timed interval inside a superstep: a PE's local
product, a message on the wire, an ABFT check window, a recovery
recompute.  The executor records spans only when constructed with
``profile=True`` — the default path stays clock-free and bit-identical,
exactly like ``trace_sink=None``.

Span times are stored **relative to the superstep's own start** (the
``t0`` of the emitting ``multiply``), so a :class:`SuperstepSpans`
payload is self-contained: the host windows with ``pe == -1`` tile
``[0, t_smvp]`` with no gaps (consecutive reads of the same monotonic
clock), which is what makes the critical-path identity in
:mod:`repro.profile.critical_path` exact by construction.

Two span families share the container:

* **host windows** (``pe == -1``): the orchestration phases as the
  foreground thread saw them — ``scatter`` / ``compute`` / ``exchange``
  / ``gather`` on the plain path, ``boundary`` / ``interior`` /
  ``wait`` / ``sum`` on the overlapped path, plus ``verify`` windows on
  the ABFT path.  They partition the superstep.
* **per-PE spans** (``pe >= 0``): one ``compute`` (or ``boundary`` +
  ``interior``) span per PE, ``wire`` spans per transmitted message
  (``pe`` = source, ``dst`` = destination, ``words`` = payload size),
  and ``recovery`` spans for ABFT recomputes.  They nest inside (or,
  for ``wire`` on the overlapped path, run concurrently with) the host
  windows.

This module deliberately imports nothing from :mod:`repro.smvp` or
:mod:`repro.telemetry` so the trace dataclass can carry a
:class:`SuperstepSpans` without an import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.util.clock import now

#: ``pe`` value marking a host (orchestration) window.
HOST = -1

#: Host window kinds, in the order the paths emit them.
HOST_KINDS = (
    "scatter",
    "compute",
    "boundary",
    "interior",
    "exchange",
    "wait",
    "sum",
    "verify",
    "gather",
)

#: Per-PE span kinds.
PE_KINDS = ("compute", "boundary", "interior", "recovery", "wire")


@dataclass(frozen=True)
class PeSpan:
    """One timed interval, relative to the superstep start (seconds)."""

    kind: str
    pe: int  # -1 = host orchestration window
    t_start: float
    t_end: float
    words: int = 0  # wire spans: payload words shipped
    dst: int = -1  # wire spans: destination PE

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    def overlap(self, t_start: float, t_end: float) -> float:
        """Seconds of this span inside ``[t_start, t_end]`` (>= 0)."""
        return max(
            0.0, min(self.t_end, t_end) - max(self.t_start, t_start)
        )

    def to_dict(self) -> dict:
        out = {
            "kind": self.kind,
            "pe": self.pe,
            "t_start": self.t_start,
            "t_end": self.t_end,
        }
        if self.words:
            out["words"] = self.words
        if self.dst >= 0:
            out["dst"] = self.dst
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "PeSpan":
        return cls(
            kind=data["kind"],
            pe=int(data["pe"]),
            t_start=float(data["t_start"]),
            t_end=float(data["t_end"]),
            words=int(data.get("words", 0)),
            dst=int(data.get("dst", -1)),
        )


@dataclass(frozen=True)
class SuperstepSpans:
    """All spans of one superstep, sorted by start time."""

    spans: Tuple[PeSpan, ...]

    def __iter__(self):
        return iter(self.spans)

    def __len__(self) -> int:
        return len(self.spans)

    def host_windows(self) -> List[PeSpan]:
        """The orchestration windows, in time order (they tile
        ``[0, t_smvp]``)."""
        return [s for s in self.spans if s.pe == HOST]

    def by_kind(
        self, kind: str, host: Optional[bool] = None
    ) -> List[PeSpan]:
        out = []
        for s in self.spans:
            if s.kind != kind:
                continue
            if host is True and s.pe != HOST:
                continue
            if host is False and s.pe == HOST:
                continue
            out.append(s)
        return out

    def total(self, kind: str, host: Optional[bool] = None) -> float:
        return sum(s.duration for s in self.by_kind(kind, host=host))

    def to_dict(self) -> List[dict]:
        return [s.to_dict() for s in self.spans]

    @classmethod
    def from_dict(cls, records: Iterable[dict]) -> "SuperstepSpans":
        return cls(tuple(PeSpan.from_dict(r) for r in records))


class SpanRecorder:
    """Collects absolute-time spans during one superstep.

    ``add`` takes *absolute* clock readings (``repro.util.clock.now``);
    ``finish(origin)`` rebases everything to the superstep start and
    returns the frozen, sorted :class:`SuperstepSpans`.

    Thread safety: ``list.append`` is atomic under the GIL, so the
    overlapped path's background wire thread and the foreground compute
    thread may record concurrently without a lock; ``start`` installs a
    *fresh* list so a straggling append to a previous superstep's list
    can never leak into the current one.
    """

    def __init__(self) -> None:
        self._spans: List[Tuple[str, int, float, float, int, int]] = []

    def start(self) -> None:
        """Begin a new superstep's recording."""
        self._spans = []

    def add(
        self,
        kind: str,
        pe: int,
        t_start: float,
        t_end: float,
        words: int = 0,
        dst: int = -1,
    ) -> None:
        self._spans.append((kind, pe, t_start, t_end, words, dst))

    def finish(self, origin: float) -> SuperstepSpans:
        """Rebase to ``origin`` and freeze the recording."""
        spans = [
            PeSpan(
                kind=kind,
                pe=pe,
                t_start=t_start - origin,
                t_end=t_end - origin,
                words=words,
                dst=dst,
            )
            for kind, pe, t_start, t_end, words, dst in self._spans
        ]
        spans.sort(key=lambda s: (s.t_start, s.pe, s.kind))
        return SuperstepSpans(tuple(spans))


class ProfiledTransport:
    """Transport proxy that records one ``wire`` span per transmit.

    Wraps either the clean transport or the fault middleware (both
    expose ``make_stats`` / ``transmit``); the inner transmit runs
    unchanged — same arguments, same payload object back — so the
    profiled exchange is bit-identical to the unprofiled one.  On the
    overlapped path the transmits (and therefore these ``add`` calls)
    happen on the background wire thread; see :class:`SpanRecorder`
    for why that is safe.
    """

    def __init__(self, inner, recorder: SpanRecorder) -> None:
        self.inner = inner
        self.recorder = recorder

    def make_stats(self):
        return self.inner.make_stats()

    def transmit(self, send, step, stats, words_sent, blocks_sent):
        t_start = now()
        payload = self.inner.transmit(
            send, step, stats, words_sent, blocks_sent
        )
        self.recorder.add(
            "wire",
            send.src,
            t_start,
            now(),
            words=int(payload.size),
            dst=send.dst,
        )
        return payload
