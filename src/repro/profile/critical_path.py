"""Critical-path extraction and wall-time attribution.

Turns one profiled :class:`~repro.smvp.trace.SuperstepTrace` (any
object carrying ``pe_spans`` / ``t_smvp`` / ``backend`` / ``step``)
into a blame breakdown over the buckets

``compute``
    Useful per-PE product time.  For concurrently executing backends
    (``threaded`` / ``shared-memory``) this is the *mean* per-PE span,
    so the gap to the slowest PE lands in ``imbalance``; for serially
    executing backends (``serial``, ``overlap``) it is the sum.
``imbalance``
    Slowest-PE excess over the mean on concurrent backends — the
    paper's ``max_i F_i`` pessimism made visible.
``latency``
    Per-message time: the latency share of measured wire time (via the
    per-message least-squares fit ``d = a + b*w``) plus the exchange
    window's non-wire residue (send building, payload summation
    bookkeeping) and the latency share of the overlapped path's
    exposed wait.
``bandwidth``
    Per-word time: the volume share of wire time and the overlapped
    path's delivery-summation window (its cost scales with delivered
    words).
``verify`` / ``recovery``
    ABFT check windows, minus the recovery recomputes they contain,
    which get their own bucket.
``overhead``
    Scatter/gather plus orchestration residue inside compute windows.

**Critical-path identity.**  The host windows are consecutive reads of
one monotonic clock, so they tile ``[0, t_smvp]`` exactly; every
window's full duration is attributed to exactly one bucket (or split
exactly between two).  Therefore ``sum(buckets) == t_smvp`` and the
extracted critical path — the chain of host windows, each labeled by
its dominant contributor — sums to ``t_smvp`` to float-addition
precision.  Tests and the CI gate rely on this identity.

Per-PE spans from worker threads/processes are *clamped* into their
matching host window before any accounting: ``perf_counter`` is
CLOCK_MONOTONIC system-wide on Linux, so cross-thread and cross-process
readings are comparable, but clamping keeps the attribution total even
on hosts where they are skewed.

This module imports nothing from :mod:`repro.smvp` (traces are duck
typed) so the trace dataclass can import :mod:`repro.profile.spans`
without a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.profile.spans import HOST, PeSpan, SuperstepSpans

#: Backends whose per-PE products genuinely run concurrently; the
#: compute window is then bounded by the slowest PE, not the sum.
CONCURRENT_BACKENDS = frozenset({"threaded", "shared-memory"})

#: Blame buckets, in render order.
BUCKETS = (
    "compute",
    "imbalance",
    "latency",
    "bandwidth",
    "verify",
    "recovery",
    "overhead",
)

#: Host window kind -> the per-PE span kind it contains.
_WINDOW_PE_KIND = {
    "compute": "compute",
    "boundary": "boundary",
    "interior": "interior",
}


@dataclass(frozen=True)
class WireFit:
    """Least-squares per-message wire model ``d = a + b*w``."""

    latency_per_msg: float  # a: seconds per message
    seconds_per_word: float  # b: seconds per word
    messages: int
    words: int

    @property
    def latency_fraction(self) -> float:
        """Share of total wire time the fit blames on per-message
        latency (1.0 when there is no volume term to separate)."""
        lat = self.messages * self.latency_per_msg
        vol = self.words * self.seconds_per_word
        total = lat + vol
        return lat / total if total > 0.0 else 1.0

    def to_dict(self) -> dict:
        return {
            "latency_per_msg": self.latency_per_msg,
            "seconds_per_word": self.seconds_per_word,
            "messages": self.messages,
            "words": self.words,
        }


def fit_wire(wires: Sequence[PeSpan]) -> WireFit:
    """Fit ``duration = a + b*words`` over the measured messages.

    Clamped to the physical region ``a, b >= 0``: a negative slope
    (tiny, noisy samples) collapses to the pure-latency model, a
    negative intercept to the pure-bandwidth model.  Degenerate inputs
    (no messages, or all the same size) fall back accordingly.
    """
    n = len(wires)
    if n == 0:
        return WireFit(0.0, 0.0, 0, 0)
    durations = [s.duration for s in wires]
    words = [float(s.words) for s in wires]
    total_words = int(sum(s.words for s in wires))
    mean_d = sum(durations) / n
    mean_w = sum(words) / n
    var_w = sum((w - mean_w) ** 2 for w in words)
    if var_w <= 0.0:
        return WireFit(max(mean_d, 0.0), 0.0, n, total_words)
    cov = sum(
        (w - mean_w) * (d - mean_d) for w, d in zip(words, durations)
    )
    b = cov / var_w
    a = mean_d - b * mean_w
    if b < 0.0:
        b, a = 0.0, mean_d
    elif a < 0.0:
        sq = sum(w * w for w in words)
        a, b = 0.0, (sum(w * d for w, d in zip(words, durations)) / sq)
        b = max(b, 0.0)
    return WireFit(max(a, 0.0), max(b, 0.0), n, total_words)


@dataclass(frozen=True)
class SuperstepProfile:
    """One superstep's full attribution."""

    step: int
    backend: str
    t_smvp: float
    buckets: Dict[str, float]
    pe_compute: Dict[int, float]  # per-PE product seconds
    straggler: Dict[int, float]  # pe seconds / median seconds
    overlap_efficiency: Optional[float]  # None off the overlapped path
    wire_fit: WireFit
    critical_path: Tuple[Tuple[str, float], ...]  # (label, seconds)

    @property
    def critical_len(self) -> float:
        return sum(d for _, d in self.critical_path)

    @property
    def identity_error(self) -> float:
        """|critical-path length - t_smvp| — ~1e-15 relative by
        construction; the CI gate checks it stays within clock
        resolution."""
        return abs(self.critical_len - self.t_smvp)


def _clamped_durations(
    spans: Sequence[PeSpan], window: PeSpan
) -> Dict[int, float]:
    """Per-PE seconds of ``spans`` clamped into ``window``."""
    out: Dict[int, float] = {}
    for s in spans:
        d = s.overlap(window.t_start, window.t_end)
        if d > 0.0:
            out[s.pe] = out.get(s.pe, 0.0) + d
    return out


def analyze_superstep(trace) -> SuperstepProfile:
    """Attribute one profiled superstep's wall time to the buckets."""
    spans: Optional[SuperstepSpans] = getattr(trace, "pe_spans", None)
    if spans is None:
        raise ValueError(
            "trace has no pe_spans; run the executor with profile=True "
            "(or pass --profile on the CLI)"
        )
    backend = getattr(trace, "backend", "serial")
    t_smvp = float(getattr(trace, "t_smvp"))
    host = spans.host_windows()
    pe_spans = [s for s in spans if s.pe != HOST]
    wires = [s for s in pe_spans if s.kind == "wire"]
    recoveries = [s for s in pe_spans if s.kind == "recovery"]
    fit = fit_wire(wires)
    lfrac = fit.latency_fraction
    concurrent = backend in CONCURRENT_BACKENDS

    buckets = {name: 0.0 for name in BUCKETS}
    pe_compute: Dict[int, float] = {}
    path: List[Tuple[str, float]] = []
    wait_windows: List[PeSpan] = []

    for window in host:
        w = window.duration
        kind = window.kind
        label = kind
        if kind == "wait":
            wait_windows.append(window)
        if kind in ("scatter", "gather"):
            buckets["overhead"] += w
        elif kind == "verify":
            healed = sum(
                s.overlap(window.t_start, window.t_end)
                for s in recoveries
            )
            healed = min(healed, w)
            buckets["recovery"] += healed
            buckets["verify"] += w - healed
            if healed > 0.0:
                label = "verify+recovery"
        elif kind in _WINDOW_PE_KIND:
            per_pe = _clamped_durations(
                [
                    s
                    for s in pe_spans
                    if s.kind == _WINDOW_PE_KIND[kind]
                ],
                window,
            )
            for pe, d in sorted(per_pe.items()):
                pe_compute[pe] = pe_compute.get(pe, 0.0) + d
            durations = list(per_pe.values())
            total_in = sum(durations)
            if concurrent and durations:
                d_max = max(durations)
                d_mean = total_in / len(durations)
                buckets["compute"] += d_mean
                buckets["imbalance"] += d_max - d_mean
                buckets["overhead"] += max(w - d_max, 0.0)
                # Clamping guarantees d_max <= w, so no residue is lost.
                label = f"{kind}[PE {max(per_pe, key=per_pe.get)}]"
            else:
                buckets["compute"] += min(total_in, w)
                buckets["overhead"] += max(w - total_in, 0.0)
                if per_pe:
                    label = f"{kind}[PE {max(per_pe, key=per_pe.get)}]"
        elif kind == "exchange":
            wire_in = sum(
                s.overlap(window.t_start, window.t_end) for s in wires
            )
            wire_in = min(wire_in, w)
            buckets["latency"] += lfrac * wire_in + (w - wire_in)
            buckets["bandwidth"] += (1.0 - lfrac) * wire_in
            if wires:
                heaviest = max(wires, key=lambda s: s.duration)
                label = f"exchange[msg {heaviest.pe}->{heaviest.dst}]"
        elif kind == "wait":
            buckets["latency"] += lfrac * w
            buckets["bandwidth"] += (1.0 - lfrac) * w
        elif kind == "sum":
            # Delivery summation: cost scales with delivered words.
            buckets["bandwidth"] += w
        else:
            buckets["overhead"] += w
        path.append((label, w))

    # Straggler score: per-PE product seconds over the median PE.
    straggler: Dict[int, float] = {}
    if pe_compute:
        ordered = sorted(pe_compute.values())
        mid = len(ordered) // 2
        if len(ordered) % 2:
            median = ordered[mid]
        else:
            median = 0.5 * (ordered[mid - 1] + ordered[mid])
        for pe, d in sorted(pe_compute.items()):
            straggler[pe] = d / median if median > 0.0 else 1.0

    # Overlap efficiency: the fraction of wire time hidden behind
    # foreground compute.  Wire spans cannot start before the wire
    # thread is launched (inside the boundary window), so any wire
    # time *not* landing in the post-join wait window ran concurrently
    # with boundary/interior compute and was genuinely hidden; only
    # wire time inside the wait window was exposed on the host's
    # critical path.
    overlap_eff: Optional[float] = None
    if wait_windows:
        wire_total = sum(s.duration for s in wires)
        if wire_total > 0.0:
            exposed = sum(
                s.overlap(w.t_start, w.t_end)
                for s in wires
                for w in wait_windows
            )
            overlap_eff = min(max(1.0 - exposed / wire_total, 0.0), 1.0)
        else:
            overlap_eff = 0.0

    return SuperstepProfile(
        step=int(getattr(trace, "step", 0)),
        backend=backend,
        t_smvp=t_smvp,
        buckets=buckets,
        pe_compute=pe_compute,
        straggler=straggler,
        overlap_efficiency=overlap_eff,
        wire_fit=fit,
        critical_path=tuple(path),
    )


def analyze_log(traces) -> List[SuperstepProfile]:
    """Profile every trace that carries spans (skipping bare ones)."""
    out = []
    for trace in traces:
        if getattr(trace, "pe_spans", None) is not None:
            out.append(analyze_superstep(trace))
    return out


# -- the superstep task DAG ------------------------------------------------


@dataclass
class TaskDag:
    """The superstep as an explicit task graph.

    Nodes map to seconds; edges run source -> successor.  Structure:
    ``scatter`` fans out to every PE's compute chain (``compute:p``,
    or ``boundary:p -> interior:p`` on the overlapped path), each
    ``boundary:p`` feeds its outgoing messages (``msg:p->q``), messages
    and compute chains join at the exchange ``barrier``, optional
    ``verify`` follows, then ``gather``.
    """

    nodes: Dict[str, float] = field(default_factory=dict)
    edges: Dict[str, List[str]] = field(default_factory=dict)

    def add_node(self, name: str, seconds: float) -> None:
        self.nodes[name] = self.nodes.get(name, 0.0) + seconds

    def add_edge(self, src: str, dst: str) -> None:
        self.edges.setdefault(src, [])
        if dst not in self.edges[src]:
            self.edges[src].append(dst)

    def longest_path(self) -> Tuple[List[str], float]:
        """The critical chain through the DAG (node-weighted)."""
        best: Dict[str, Tuple[float, List[str]]] = {}

        def visit(name: str) -> Tuple[float, List[str]]:
            cached = best.get(name)
            if cached is not None:
                return cached
            weight = self.nodes.get(name, 0.0)
            tail: Tuple[float, List[str]] = (0.0, [])
            for succ in self.edges.get(name, []):
                cand = visit(succ)
                if cand[0] > tail[0]:
                    tail = cand
            result = (weight + tail[0], [name] + tail[1])
            best[name] = result
            return result

        targets = set()
        for succs in self.edges.values():
            targets.update(succs)
        roots = [n for n in sorted(self.nodes) if n not in targets]
        if not roots:
            roots = sorted(self.nodes)
        top: Tuple[float, List[str]] = (0.0, [])
        for root in roots:
            cand = visit(root)
            if cand[0] > top[0]:
                top = cand
        return top[1], top[0]


def build_task_dag(trace) -> TaskDag:
    """Construct the task DAG of one profiled superstep."""
    spans: Optional[SuperstepSpans] = getattr(trace, "pe_spans", None)
    if spans is None:
        raise ValueError("trace has no pe_spans")
    dag = TaskDag()
    host = {s.kind: s for s in spans.host_windows() if s.kind != "verify"}
    verify_total = sum(
        s.duration for s in spans.host_windows() if s.kind == "verify"
    )
    dag.add_node("scatter", host["scatter"].duration if "scatter" in host else 0.0)
    dag.add_node("gather", host["gather"].duration if "gather" in host else 0.0)
    dag.add_node("barrier", 0.0)
    overlapped = "boundary" in host

    pes = sorted(
        {s.pe for s in spans if s.pe != HOST and s.kind != "wire"}
    )
    for pe in pes:
        if overlapped:
            b = sum(
                s.duration
                for s in spans
                if s.pe == pe and s.kind == "boundary"
            )
            i = sum(
                s.duration
                for s in spans
                if s.pe == pe and s.kind == "interior"
            )
            dag.add_node(f"boundary:{pe}", b)
            dag.add_node(f"interior:{pe}", i)
            dag.add_edge("scatter", f"boundary:{pe}")
            dag.add_edge(f"boundary:{pe}", f"interior:{pe}")
            dag.add_edge(f"interior:{pe}", "barrier")
        else:
            c = sum(
                s.duration
                for s in spans
                if s.pe == pe and s.kind in ("compute", "recovery")
            )
            dag.add_node(f"compute:{pe}", c)
            dag.add_edge("scatter", f"compute:{pe}")
            dag.add_edge(f"compute:{pe}", "barrier")
    for s in spans:
        if s.kind != "wire":
            continue
        name = f"msg:{s.pe}->{s.dst}"
        dag.add_node(name, s.duration)
        src = f"boundary:{s.pe}" if overlapped else f"compute:{s.pe}"
        if src in dag.nodes:
            dag.add_edge(src, name)
        else:
            dag.add_edge("scatter", name)
        dag.add_edge(name, "barrier")
    tail = "barrier"
    if verify_total > 0.0:
        dag.add_node("verify", verify_total)
        dag.add_edge("barrier", "verify")
        tail = "verify"
    dag.add_edge(tail, "gather")
    return dag
