"""Critical-path profiler: per-PE spans, blame attribution, reports.

The "why is it slow" layer on top of the telemetry's "how slow is it":
:mod:`~repro.profile.spans` records per-PE / per-message spans inside
the executor (``profile=True``), :mod:`~repro.profile.critical_path`
turns one superstep's spans into a task DAG, a critical path, and a
wall-time attribution over {compute, imbalance, latency, bandwidth,
verify, recovery, overhead}, and :mod:`~repro.profile.report`
aggregates runs into the blame table / folded stacks / JSON snapshots
behind the ``repro-profile`` CLI.
"""

from repro.profile.critical_path import (
    BUCKETS,
    CONCURRENT_BACKENDS,
    SuperstepProfile,
    TaskDag,
    WireFit,
    analyze_log,
    analyze_superstep,
    build_task_dag,
    fit_wire,
)
from repro.profile.report import (
    DEFAULT_REGRESS_THRESHOLD,
    ProfileReport,
    build_report,
    compare_snapshots,
    load_snapshot,
    render_folded,
    render_report,
    render_snapshot,
    snapshot,
)
from repro.profile.spans import (
    HOST,
    HOST_KINDS,
    PE_KINDS,
    PeSpan,
    ProfiledTransport,
    SpanRecorder,
    SuperstepSpans,
)

__all__ = [
    "BUCKETS",
    "CONCURRENT_BACKENDS",
    "DEFAULT_REGRESS_THRESHOLD",
    "HOST",
    "HOST_KINDS",
    "PE_KINDS",
    "PeSpan",
    "ProfileReport",
    "ProfiledTransport",
    "SpanRecorder",
    "SuperstepProfile",
    "SuperstepSpans",
    "TaskDag",
    "WireFit",
    "analyze_log",
    "analyze_superstep",
    "build_report",
    "build_task_dag",
    "compare_snapshots",
    "fit_wire",
    "load_snapshot",
    "render_folded",
    "render_report",
    "render_snapshot",
    "snapshot",
]
