"""repro — reproduction of "Architectural Implications of a Family of
Irregular Applications" (O'Hallaron, Shewchuk, Gross; HPCA 1998).

The package builds the paper's whole stack from scratch:

* a synthetic San-Fernando-style basin ground model
  (:mod:`repro.velocity`) and a graded unstructured tetrahedral mesher
  (:mod:`repro.octree`, :mod:`repro.mesh`),
* linear-elasticity finite elements with explicit time stepping
  (:mod:`repro.fem`),
* geometric/spectral/combinatorial mesh partitioners
  (:mod:`repro.partition`),
* the parallel SMVP — distribution, communication schedule, kernels,
  and a verifiable distributed executor (:mod:`repro.smvp`),
* the application statistics of Figures 6-7 (:mod:`repro.stats`),
* the performance models of Equations (1)-(2) and the Section 4
  requirement analyses (:mod:`repro.model`),
* a BSP machine simulator validating the model (:mod:`repro.simulate`),
* self-healing execution — superstep supervisor, online PE eviction,
  and the chaos harness proving survivor equivalence
  (:mod:`repro.resilience`),
* end-to-end telemetry — metrics registry, Perfetto timelines, and
  model-vs-measured drift monitoring (:mod:`repro.telemetry`),
* and regeneration of every table and figure (:mod:`repro.tables`).

Quick start::

    from repro import get_instance, partition_mesh, smvp_statistics

    mesh, _ = get_instance("sf10e").build()
    stats = smvp_statistics(mesh, num_parts=64)
    print(stats)            # F, C_max, B_max, M_avg, F/C, beta

See ``examples/quickstart.py`` for the full tour.
"""

from repro.mesh import (
    TetMesh,
    generate_mesh,
    get_instance,
    instance_names,
    INSTANCES,
    QuakeInstance,
)
from repro.partition import Partition, partition_mesh, partition_metrics
from repro.smvp import (
    CommSchedule,
    DataDistribution,
    DistributedSMVP,
    SuperstepTrace,
    TraceLog,
    backend_names,
    get_kernel,
    kernel_names,
)
from repro.stats import smvp_statistics, SmvpStats, beta_bound
from repro.model import (
    Machine,
    ModelInputs,
    CURRENT_100MFLOPS,
    FUTURE_200MFLOPS,
    CRAY_T3D,
    CRAY_T3E,
    required_tc,
    sustained_bandwidth_bytes,
    half_bandwidth_targets,
)
from repro.resilience import (
    KillSchedule,
    RecoveryPolicy,
    SuperstepSupervisor,
    run_chaos,
)
from repro.simulate import BspSimulator, validate_model
from repro.telemetry import (
    DriftMonitor,
    DriftReport,
    MetricsRegistry,
    get_registry,
    render_chrome_trace,
    render_prometheus,
    set_registry,
    use_registry,
    write_metrics,
)
from repro.velocity import BasinModel, default_san_fernando_like_model

__version__ = "1.0.0"

__all__ = [
    "TetMesh",
    "generate_mesh",
    "get_instance",
    "instance_names",
    "INSTANCES",
    "QuakeInstance",
    "Partition",
    "partition_mesh",
    "partition_metrics",
    "CommSchedule",
    "DataDistribution",
    "DistributedSMVP",
    "SuperstepTrace",
    "TraceLog",
    "backend_names",
    "get_kernel",
    "kernel_names",
    "smvp_statistics",
    "SmvpStats",
    "beta_bound",
    "Machine",
    "ModelInputs",
    "CURRENT_100MFLOPS",
    "FUTURE_200MFLOPS",
    "CRAY_T3D",
    "CRAY_T3E",
    "required_tc",
    "sustained_bandwidth_bytes",
    "half_bandwidth_targets",
    "BspSimulator",
    "validate_model",
    "KillSchedule",
    "RecoveryPolicy",
    "SuperstepSupervisor",
    "run_chaos",
    "DriftMonitor",
    "DriftReport",
    "MetricsRegistry",
    "get_registry",
    "render_chrome_trace",
    "render_prometheus",
    "set_registry",
    "use_registry",
    "write_metrics",
    "BasinModel",
    "default_san_fernando_like_model",
    "__version__",
]
