"""Metric exposition: Prometheus-style text and JSON snapshots.

Both renderings are pure functions of a registry snapshot, emit metrics
in sorted-name order, and carry no timestamps of their own — the output
is byte-stable for a deterministic workload.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


def _fmt_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _fmt_labels(key: Tuple[Tuple[str, str], ...]) -> str:
    if not key:
        return ""
    inner = ",".join(
        '{}="{}"'.format(k, v.replace("\\", "\\\\").replace('"', '\\"'))
        for k, v in key
    )
    return "{" + inner + "}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text exposition (``# HELP`` / ``# TYPE`` / samples)."""
    lines: List[str] = []
    for metric in registry.metrics():
        name = metric.name  # type: ignore[attr-defined]
        help_text = metric.help_text  # type: ignore[attr-defined]
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {metric.kind}")  # type: ignore[attr-defined]
        if isinstance(metric, (Counter, Gauge)):
            for key, value in metric.series():
                lines.append(
                    f"{name}{_fmt_labels(key)} {_fmt_value(value)}"
                )
        elif isinstance(metric, Histogram):
            cumulative = metric.cumulative_counts()
            bounds = [_fmt_value(b) for b in metric.buckets] + ["+Inf"]
            for bound, total in zip(bounds, cumulative):
                lines.append(
                    f'{name}_bucket{{le="{bound}"}} {total}'
                )
            lines.append(f"{name}_sum {_fmt_value(metric.sum)}")
            lines.append(f"{name}_count {metric.count}")
    return "\n".join(lines) + "\n"


def render_snapshot_json(registry: MetricsRegistry) -> str:
    """The registry snapshot as stable, indented JSON."""
    return json.dumps(registry.snapshot(), indent=2, sort_keys=True) + "\n"


def write_metrics(
    registry: MetricsRegistry, path: Union[str, Path]
) -> Path:
    """Write a snapshot to ``path``; format chosen by extension.

    ``.json`` gets the JSON snapshot, anything else the Prometheus
    text exposition.  Returns the path written.
    """
    path = Path(path)
    if path.suffix == ".json":
        text = render_snapshot_json(registry)
    else:
        text = render_prometheus(registry)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return path


def snapshot_dict(registry: MetricsRegistry) -> Dict[str, object]:
    """Convenience alias for ``registry.snapshot()``."""
    return registry.snapshot()
