"""Process-wide observability: metrics, timelines, drift monitoring.

Four pieces:

* :mod:`repro.telemetry.registry` — the :class:`MetricsRegistry` of
  counters/gauges/histograms/spans, installed process-wide via
  :func:`set_registry` / :func:`use_registry`; all pipeline hooks
  no-op (one global load + ``is None`` test) when nothing is
  installed, and nothing ever reads a clock unless one is explicitly
  attached.
* :mod:`repro.telemetry.export` — Prometheus-style text exposition and
  JSON snapshots.
* :mod:`repro.telemetry.timeline` — Chrome-trace/Perfetto JSON from a
  :class:`~repro.smvp.trace.TraceLog` plus stage spans.
* :mod:`repro.telemetry.drift` — measured-vs-modeled comparison
  against Equations (1)/(2) and the β bound, with thresholded
  pass/fail for CI.

Everything is surfaced by the ``repro-metrics`` CLI (``snapshot`` /
``timeline`` / ``drift``) and the ``--metrics-out`` / ``--timeline-out``
flags on ``repro-quake``, ``repro-measure``, and ``repro-trace``.
"""

from repro.telemetry.drift import (
    DriftError,
    DriftMonitor,
    DriftRecord,
    DriftReport,
    DriftThresholds,
    eq2_t_comm,
    fit_machine,
    modeled_breakdown,
)
from repro.telemetry.export import (
    render_prometheus,
    render_snapshot_json,
    write_metrics,
)
from repro.telemetry.registry import (
    Counter,
    DEFAULT_SECONDS_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    Span,
    count,
    get_registry,
    observe,
    record_eviction,
    record_fault_stats,
    set_gauge,
    set_registry,
    stage_span,
    use_registry,
)
from repro.telemetry.timeline import (
    chrome_trace,
    render_chrome_trace,
    span_events,
    trace_events,
    validate_trace_events,
)

__all__ = [
    "Counter",
    "DEFAULT_SECONDS_BUCKETS",
    "DriftError",
    "DriftMonitor",
    "DriftRecord",
    "DriftReport",
    "DriftThresholds",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "chrome_trace",
    "count",
    "eq2_t_comm",
    "fit_machine",
    "get_registry",
    "modeled_breakdown",
    "observe",
    "record_eviction",
    "record_fault_stats",
    "render_chrome_trace",
    "render_prometheus",
    "render_snapshot_json",
    "set_gauge",
    "set_registry",
    "span_events",
    "stage_span",
    "trace_events",
    "use_registry",
    "validate_trace_events",
    "write_metrics",
]
