"""Model-vs-measured drift monitoring.

The paper's argument chain is: measure application properties (F_i,
C_i, B_i), predict phase times with Equations (1)/(2), trust the
prediction because the β bound caps the model's pessimism.  The drift
monitor closes that loop at runtime: feed it the per-superstep
:class:`~repro.smvp.trace.PhaseBreakdown` stream from either the real
executor or the BSP simulator, and it compares each superstep against
the analytic prediction for the same workload on a given
:class:`~repro.model.machine.Machine`.

Two modeled communication times are tracked:

* the *exact* per-PE form ``max_i (B_i T_l + C_i T_w)`` — what the
  barrier-mode simulator computes, so simulator drift is zero by
  construction;
* the paper's Equation (2) aggregate ``B_max T_l + C_max T_w`` — the
  pessimistic bound, which must stay within ``β ×`` the exact form
  (a violation means the measured traffic no longer matches the
  schedule the β bound was computed from).

``DriftMonitor`` is itself a valid trace sink (``monitor(trace)``), so
it can be attached anywhere a :class:`~repro.smvp.trace.TraceLog` can.
This module is deliberately clock-free: it only ever consumes times
measured elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.model.machine import Machine
from repro.smvp.schedule import CommSchedule
from repro.smvp.trace import PhaseBreakdown
from repro.stats.beta import beta_bound
from repro.telemetry.registry import get_registry

#: Relative slack allowed on the β check before it counts as violated
#: (β itself is exact arithmetic; the slack absorbs float roundoff).
BETA_TOLERANCE = 1e-9


class DriftError(ValueError):
    """Raised by :meth:`DriftReport.check` when drift exceeds bounds."""


def _relative(measured: float, modeled: float) -> float:
    """Signed relative drift; 0 when both are (near-)zero."""
    if modeled != 0.0:
        return (measured - modeled) / modeled
    return 0.0 if measured == 0.0 else float("inf")


def modeled_breakdown(
    flops_per_pe: np.ndarray,
    schedule: CommSchedule,
    machine: Machine,
    rhs: int = 1,
) -> PhaseBreakdown:
    """Exact per-PE barrier-model prediction for one superstep.

    ``rhs`` is the block width: an r-column superstep does r times the
    flops and ships r words per shared dof at unchanged block count.
    ``rhs=1`` is bit-identical to the historical prediction.
    """
    machine.require_comm("drift monitoring")
    if rhs < 1:
        raise ValueError("rhs must be >= 1")
    flops = np.asarray(flops_per_pe, dtype=np.float64)
    tf = machine.tf * rhs
    tw = machine.tw * rhs
    t_comp = float((flops * tf).max()) if len(flops) else 0.0
    busy = (
        schedule.blocks_per_pe * machine.tl
        + schedule.words_per_pe * tw
    )
    if machine.tq is not None:
        # Queue-search contention (Bienz et al.): matching q_i incoming
        # messages against a queue of depth q_i, per message — not per
        # word, so the term is r-independent.  Mirrors the simulator's
        # ``_comm_busy`` exactly, keeping sim-vs-model drift at zero.
        incoming = schedule.incoming_per_pe.astype(np.float64)
        busy = busy + machine.tq * incoming * incoming
    t_comm = float(busy.max()) if len(busy) else 0.0
    return PhaseBreakdown(
        t_comp=t_comp, t_comm=t_comm, t_smvp=t_comp + t_comm
    )


def eq2_t_comm(schedule: CommSchedule, machine: Machine, rhs: int = 1) -> float:
    """The paper's Equation (2): ``B_max T_l + C_max T_w``.

    With ``rhs > 1`` the volume term grows r-fold (``C_max`` shared
    words each carry r columns) while the latency term ``B_max T_l``
    is unchanged — the block engine's whole point.
    """
    machine.require_comm("Equation (2)")
    if rhs < 1:
        raise ValueError("rhs must be >= 1")
    return schedule.b_max * machine.tl + schedule.c_max * (machine.tw * rhs)


def contended_t_comm(
    schedule: CommSchedule, machine: Machine, rhs: int = 1
) -> float:
    """Contention-corrected Eq. (2): ``B_max T_l + r C_max T_w + T_q Q_max^2``.

    ``Q_max`` is the deepest receive queue any PE sees in one exchange
    (:attr:`~repro.smvp.schedule.CommSchedule.q_max`).  Requires a
    machine with ``tq`` set (fit one with
    :func:`fit_machine_contended`).
    """
    if machine.tq is None:
        raise ValueError(
            f"machine {machine.name!r} has no contention coefficient tq; "
            "fit one with fit_machine_contended"
        )
    q = float(schedule.q_max)
    return eq2_t_comm(schedule, machine, rhs=rhs) + machine.tq * q * q


@dataclass(frozen=True)
class DriftThresholds:
    """Relative-drift bounds for :meth:`DriftReport.check`."""

    max_comp_drift: float = 0.25
    max_comm_drift: float = 0.25
    max_efficiency_delta: float = 0.10


#: Tightened defaults for contention-aware machines: once the model
#: accounts for queue contention, the residual it leaves unexplained
#: should be smaller, so the monitor demands less slack.
CONTENDED_THRESHOLDS = DriftThresholds(
    max_comp_drift=0.25,
    max_comm_drift=0.15,
    max_efficiency_delta=0.08,
)


@dataclass(frozen=True)
class DriftRecord:
    """One superstep's measured-vs-modeled comparison."""

    step: int
    measured: PhaseBreakdown
    modeled: PhaseBreakdown
    words_measured: Optional[int] = None
    words_scheduled: Optional[int] = None
    #: Per-term measured-vs-modeled residuals (compute / latency /
    #: bandwidth), populated when the observed trace carried profiler
    #: spans: term -> {"measured", "modeled", "residual"}.
    term_residuals: Optional[dict] = None

    @property
    def comp_drift(self) -> float:
        return _relative(self.measured.t_comp, self.modeled.t_comp)

    @property
    def comm_drift(self) -> float:
        return _relative(self.measured.t_comm, self.modeled.t_comm)

    @property
    def efficiency_delta(self) -> float:
        return self.measured.efficiency - self.modeled.efficiency

    @property
    def traffic_drift(self) -> float:
        """Relative excess words vs the schedule (retransmits show up here)."""
        if self.words_measured is None or self.words_scheduled is None:
            return 0.0
        return _relative(
            float(self.words_measured), float(self.words_scheduled)
        )

    def to_dict(self) -> dict:
        out = {
            "step": self.step,
            "t_comp_measured": self.measured.t_comp,
            "t_comp_modeled": self.modeled.t_comp,
            "comp_drift": self.comp_drift,
            "t_comm_measured": self.measured.t_comm,
            "t_comm_modeled": self.modeled.t_comm,
            "comm_drift": self.comm_drift,
            "efficiency_measured": self.measured.efficiency,
            "efficiency_modeled": self.modeled.efficiency,
            "efficiency_delta": self.efficiency_delta,
            "traffic_drift": self.traffic_drift,
        }
        if self.term_residuals is not None:
            out["term_residuals"] = self.term_residuals
        return out


@dataclass
class DriftReport:
    """Everything the monitor observed, plus pass/fail logic."""

    machine: str
    beta: float
    eq2_t_comm: float
    exact_t_comm: float
    thresholds: DriftThresholds
    records: List[DriftRecord] = field(default_factory=list)

    @property
    def beta_violated(self) -> bool:
        """Eq. (2) exceeding β × the exact model breaks the paper's bound."""
        return self.eq2_t_comm > self.beta * self.exact_t_comm * (
            1.0 + BETA_TOLERANCE
        )

    @property
    def max_abs_comp_drift(self) -> float:
        return max((abs(r.comp_drift) for r in self.records), default=0.0)

    @property
    def max_abs_comm_drift(self) -> float:
        return max((abs(r.comm_drift) for r in self.records), default=0.0)

    @property
    def max_abs_efficiency_delta(self) -> float:
        return max(
            (abs(r.efficiency_delta) for r in self.records), default=0.0
        )

    def violations(self) -> List[str]:
        out: List[str] = []
        t = self.thresholds
        if self.max_abs_comp_drift > t.max_comp_drift:
            out.append(
                f"T_comp drift {self.max_abs_comp_drift:.3%} exceeds "
                f"{t.max_comp_drift:.3%}"
            )
        if self.max_abs_comm_drift > t.max_comm_drift:
            out.append(
                f"T_comm drift {self.max_abs_comm_drift:.3%} exceeds "
                f"{t.max_comm_drift:.3%}"
            )
        if self.max_abs_efficiency_delta > t.max_efficiency_delta:
            out.append(
                f"efficiency delta {self.max_abs_efficiency_delta:.3f} "
                f"exceeds {t.max_efficiency_delta:.3f}"
            )
        if self.beta_violated:
            out.append(
                f"beta bound violated: Eq.(2) T_comm "
                f"{self.eq2_t_comm:.3e} > beta({self.beta:.3f}) x exact "
                f"{self.exact_t_comm:.3e}"
            )
        return out

    @property
    def ok(self) -> bool:
        return not self.violations()

    def check(self) -> None:
        """Raise :class:`DriftError` when any bound is exceeded."""
        problems = self.violations()
        if problems:
            raise DriftError("; ".join(problems))

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "machine": self.machine,
            "beta": self.beta,
            "eq2_t_comm": self.eq2_t_comm,
            "exact_t_comm": self.exact_t_comm,
            "beta_violated": self.beta_violated,
            "max_abs_comp_drift": self.max_abs_comp_drift,
            "max_abs_comm_drift": self.max_abs_comm_drift,
            "max_abs_efficiency_delta": self.max_abs_efficiency_delta,
            "violations": self.violations(),
            "supersteps": [r.to_dict() for r in self.records],
        }

    def render_table(self) -> str:
        header = (
            f"{'step':>5} {'comp meas':>11} {'comp model':>11} "
            f"{'drift':>8} {'comm meas':>11} {'comm model':>11} "
            f"{'drift':>8} {'eff meas':>8} {'eff model':>9}"
        )
        lines = [header, "-" * len(header)]
        for r in self.records:
            lines.append(
                f"{r.step:>5} {r.measured.t_comp:>11.4e} "
                f"{r.modeled.t_comp:>11.4e} {r.comp_drift:>8.2%} "
                f"{r.measured.t_comm:>11.4e} {r.modeled.t_comm:>11.4e} "
                f"{r.comm_drift:>8.2%} {r.measured.efficiency:>8.3f} "
                f"{r.modeled.efficiency:>9.3f}"
            )
        lines.append("-" * len(header))
        beta_state = "VIOLATED" if self.beta_violated else "ok"
        lines.append(
            f"machine={self.machine}  beta={self.beta:.3f}  "
            f"Eq.(2) T_comm={self.eq2_t_comm:.4e}  "
            f"exact T_comm={self.exact_t_comm:.4e}  [{beta_state}]"
        )
        lines.append(
            f"max |drift|: comp={self.max_abs_comp_drift:.2%}  "
            f"comm={self.max_abs_comm_drift:.2%}  "
            f"efficiency delta={self.max_abs_efficiency_delta:.3f}"
        )
        profiled = [r for r in self.records if r.term_residuals]
        if profiled:
            worst: dict = {}
            for r in profiled:
                for term, d in r.term_residuals.items():
                    res = abs(d["residual"])
                    if res > worst.get(term, -1.0):
                        worst[term] = res
            worst_term = max(worst, key=worst.get)
            terms = "  ".join(
                f"{term}={worst[term]:.2%}"
                for term in ("compute", "latency", "bandwidth")
                if term in worst
            )
            lines.append(
                f"profiled term residuals (max |.|): {terms}  "
                f"[worst: {worst_term}]"
            )
        return "\n".join(lines)


class DriftMonitor:
    """Compare a stream of phase breakdowns against the model.

    Usable directly as a trace sink::

        monitor = DriftMonitor(flops, schedule, machine)
        smvp = DistributedSMVP(..., trace_sink=monitor)
    """

    def __init__(
        self,
        flops_per_pe: np.ndarray,
        schedule: CommSchedule,
        machine: Machine,
        thresholds: Optional[DriftThresholds] = None,
        rhs: int = 1,
    ) -> None:
        machine.require_comm("drift monitoring")
        if rhs < 1:
            raise ValueError("rhs must be >= 1")
        self.machine = machine
        self.schedule = schedule
        self.rhs = int(rhs)
        self.flops = np.asarray(flops_per_pe, dtype=np.float64)
        self.modeled = modeled_breakdown(self.flops, schedule, machine, rhs=rhs)
        # A contention-aware machine explains more of the measured comm
        # time, so it is held to the tighter default bounds.
        self.thresholds = thresholds or (
            CONTENDED_THRESHOLDS
            if machine.tq is not None
            else DriftThresholds()
        )
        self.beta = beta_bound(
            schedule.words_per_pe, schedule.blocks_per_pe
        )
        self.eq2 = eq2_t_comm(schedule, machine, rhs=rhs)
        self.words_scheduled = int(schedule.total_words) * self.rhs
        self.records: List[DriftRecord] = []

    def observe(
        self,
        breakdown: PhaseBreakdown,
        step: Optional[int] = None,
        words_measured: Optional[int] = None,
    ) -> DriftRecord:
        """Record one superstep; extracts what it can from the trace."""
        if step is None:
            step = getattr(breakdown, "step", len(self.records))
        if words_measured is None:
            words = getattr(breakdown, "words_sent", None)
            if words is not None:
                words_measured = int(np.asarray(words).sum())
        term_residuals = None
        if getattr(breakdown, "pe_spans", None) is not None:
            term_residuals = self._term_residuals(breakdown)
        record = DriftRecord(
            step=int(step),
            measured=PhaseBreakdown(
                t_comp=breakdown.t_comp,
                t_comm=breakdown.t_comm,
                t_smvp=breakdown.t_smvp,
            ),
            modeled=self.modeled,
            words_measured=words_measured,
            words_scheduled=self.words_scheduled,
            term_residuals=term_residuals,
        )
        self.records.append(record)
        reg = get_registry()
        if reg is not None:
            reg.counter(
                "repro_drift_observations_total",
                "supersteps compared against the model",
            ).inc()
            reg.gauge(
                "repro_drift_efficiency_delta",
                "last measured-minus-modeled efficiency",
            ).set(record.efficiency_delta)
        return record

    def _term_residuals(self, trace) -> dict:
        """Profiler buckets vs the model's per-term predictions.

        The analytic model splits a superstep into compute
        (``max_i F_i T_f r``), latency (``B_max T_l``) and bandwidth
        (``C_max T_w r``); the profiler's buckets measure the same
        three terms directly (compute + imbalance is the slowest-PE
        product time, matching the model's ``max_i``), so a drifting
        prediction is localized to the term that drifted.
        """
        from repro.profile.critical_path import analyze_superstep

        buckets = analyze_superstep(trace).buckets
        modeled = {
            "compute": self.modeled.t_comp,
            "latency": self.schedule.b_max * self.machine.tl,
            "bandwidth": self.schedule.c_max * self.machine.tw * self.rhs,
        }
        measured = {
            "compute": buckets["compute"] + buckets["imbalance"],
            "latency": buckets["latency"],
            "bandwidth": buckets["bandwidth"],
        }
        return {
            term: {
                "measured": measured[term],
                "modeled": modeled[term],
                "residual": _relative(measured[term], modeled[term]),
            }
            for term in ("compute", "latency", "bandwidth")
        }

    # A DriftMonitor is a TraceSink.
    __call__ = observe

    def report(self) -> DriftReport:
        return DriftReport(
            machine=self.machine.name,
            beta=float(self.beta),
            eq2_t_comm=float(self.eq2),
            exact_t_comm=self.modeled.t_comm,
            thresholds=self.thresholds,
            records=list(self.records),
        )


def fit_machine(
    breakdowns: Sequence[PhaseBreakdown],
    flops_per_pe: np.ndarray,
    schedule: CommSchedule,
    name: str = "host-fit",
) -> Machine:
    """Calibrate a (T_f, T_l, T_w) machine from measured supersteps.

    Used by ``repro-metrics drift --source execute`` to compare a real
    host run against itself: T_f from the mean compute phase over
    ``max_i F_i``, T_w from the mean communication phase over ``C_max``
    with T_l folded to zero (the host exchange has no per-block wire
    latency to separate out).
    """
    if not breakdowns:
        raise ValueError("need at least one measured superstep to fit")
    flops = np.asarray(flops_per_pe, dtype=np.float64)
    f_max = float(flops.max()) if len(flops) else 0.0
    if f_max <= 0:
        raise ValueError("cannot fit tf: no flops recorded")
    mean_comp = sum(b.t_comp for b in breakdowns) / len(breakdowns)
    mean_comm = sum(b.t_comm for b in breakdowns) / len(breakdowns)
    tf = max(mean_comp / f_max, 1e-15)
    c_max = float(schedule.c_max)
    tw = mean_comm / c_max if c_max > 0 else 0.0
    return Machine(name=name, tf=tf, tl=0.0, tw=max(tw, 0.0))


@dataclass(frozen=True)
class ContentionFit:
    """Outcome of a uniform-vs-contended machine calibration.

    Both machines are fit by least squares over the same sweep of
    measured supersteps at different PE counts; the uniform model is
    nested inside the contended one (``tq = 0``), so
    ``contended_residual <= uniform_residual`` whenever the contention
    term explains any of the measured communication time.  Residuals
    are RMS seconds of the per-superstep ``T_comm`` prediction error.
    """

    machine: Machine
    uniform_machine: Machine
    uniform_residual: float
    contended_residual: float
    samples: int

    @property
    def residual_reduction(self) -> float:
        """Fraction of the uniform model's residual the contention
        term removed (0 when the contended fit degenerated)."""
        if self.uniform_residual <= 0:
            return 0.0
        return 1.0 - self.contended_residual / self.uniform_residual


def _rms(residuals: np.ndarray) -> float:
    return float(np.sqrt(np.mean(residuals * residuals)))


def fit_machine_contended(
    sweep,
    name: str = "host-fit-contended",
) -> ContentionFit:
    """Fit (T_l, T_w, T_q) from measured supersteps across a PE sweep.

    ``sweep`` is a sequence of ``(breakdowns, flops_per_pe, schedule)``
    triples — one per PE count, each with the supersteps measured at
    that layout.  The uniform model regresses the measured ``T_comm``
    on ``(B_max, C_max)``; the contended model adds the queue-search
    term ``Q_max**2`` (see :func:`contended_t_comm`).  A single-layout
    sweep cannot separate the predictors (they are colinear at fixed
    p), which is why the autoscaler's oracle is fit from a sweep and
    not from one run.  Coefficients are clamped non-negative; if
    clamping degrades the contended fit below the uniform one, the
    contention term is dropped (``tq = 0``) so the contended model
    never predicts worse than the uniform model it extends.
    """
    rows = []
    targets = []
    comp_rows = []
    for breakdowns, flops_per_pe, schedule in sweep:
        flops = np.asarray(flops_per_pe, dtype=np.float64)
        f_max = float(flops.max()) if len(flops) else 0.0
        q = float(schedule.q_max)
        for b in breakdowns:
            rows.append([float(schedule.b_max), float(schedule.c_max), q * q])
            targets.append(float(b.t_comm))
            if f_max > 0:
                comp_rows.append(b.t_comp / f_max)
    if not rows:
        raise ValueError("need at least one measured superstep to fit")
    design = np.asarray(rows, dtype=np.float64)
    y = np.asarray(targets, dtype=np.float64)
    tf = max(float(np.mean(comp_rows)) if comp_rows else 0.0, 1e-15)

    def _solve(columns: np.ndarray) -> np.ndarray:
        coef, *_ = np.linalg.lstsq(columns, y, rcond=None)
        return np.maximum(coef, 0.0)

    uniform_coef = _solve(design[:, :2])
    uniform_residual = _rms(y - design[:, :2] @ uniform_coef)
    contended_coef = _solve(design)
    contended_residual = _rms(y - design @ contended_coef)
    if contended_residual > uniform_residual:
        contended_coef = np.append(uniform_coef, 0.0)
        contended_residual = uniform_residual
    uniform = Machine(
        name=f"{name}-uniform",
        tf=tf,
        tl=float(uniform_coef[0]),
        tw=float(uniform_coef[1]),
    )
    contended = Machine(
        name=name,
        tf=tf,
        tl=float(contended_coef[0]),
        tw=float(contended_coef[1]),
        tq=float(contended_coef[2]),
    )
    return ContentionFit(
        machine=contended,
        uniform_machine=uniform,
        uniform_residual=uniform_residual,
        contended_residual=contended_residual,
        samples=len(rows),
    )
