"""Chrome-trace / Perfetto timeline export.

Converts a :class:`~repro.smvp.trace.TraceLog` (per-superstep phase
durations and per-PE traffic) plus any registry stage spans into the
Chrome trace-event JSON format, loadable in ``chrome://tracing`` or
https://ui.perfetto.dev.

Layout: one process (``pid`` 0) with

* four *phase* tracks (``tid`` 0-3: scatter / compute / exchange /
  gather) carrying one complete ("X") event per superstep,
* a *verify* track (``tid`` 4) for the ABFT check windows of profiled
  verified supersteps,
* one track per distinct registry span track (``tid`` 50+) for the
  upstream stages (mesh build, partitioning, assembly, ...),
* a *wire* track (``tid`` 90) carrying each profiled message transit
  as its own span with ``words``/``src``/``dst`` args — on the
  overlapped backend this is the background wire thread made visible
  as a distinct timeline row,
* one track per PE (``tid`` 100 + pe): for unprofiled traces the PE's
  exchange window with its words/blocks as ``args``; for profiled
  traces that PE's actual compute / boundary / interior / recovery
  spans.

Timestamps are *synthesized* from the recorded durations: superstep
``k`` starts where superstep ``k-1``'s ``t_smvp`` ended, so the export
is a pure function of the trace — no clock is read here, and two runs
of a deterministic simulator workload export byte-identical timelines.
Profiled traces place their span events at the recorded offsets within
the superstep's ``[start, start + t_smvp]`` slot (host windows tile
that interval exactly), so tracks never carry overlapping spans —
:func:`validate_trace_events` asserts this for every export.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence

from repro.profile.spans import HOST
from repro.smvp.trace import SuperstepTrace, TraceLog
from repro.telemetry.registry import MetricsRegistry, Span

#: Seconds -> Chrome-trace microseconds.
_US = 1e6

#: tid layout (see module docstring).
PHASE_TRACKS = ("scatter", "compute", "exchange", "gather")
VERIFY_TID = 4
STAGE_TID_BASE = 50
WIRE_TID = 90
PE_TID_BASE = 100

#: Profiled host-window kind -> phase track tid.  The overlapped
#: path's boundary/interior windows are sub-phases of compute, and its
#: wait/sum windows sub-phases of exchange, so they share those tids
#: (they tile disjoint sub-intervals — no overlap).
_HOST_KIND_TIDS = {
    "scatter": 0,
    "compute": 1,
    "boundary": 1,
    "interior": 1,
    "exchange": 2,
    "wait": 2,
    "sum": 2,
    "gather": 3,
    "verify": VERIFY_TID,
}

#: Required keys per the trace-event schema we target.
REQUIRED_EVENT_KEYS = ("ph", "ts", "pid", "tid")

#: Same-track span-overlap tolerance (microseconds): adjacent host
#: windows share a clock reading exactly; worker spans are clamped.
_OVERLAP_EPS_US = 1e-3


def _event(
    name: str,
    ph: str,
    ts: float,
    pid: int,
    tid: int,
    **extra: object,
) -> Dict[str, object]:
    out: Dict[str, object] = {
        "name": name,
        "ph": ph,
        "ts": ts,
        "pid": pid,
        "tid": tid,
    }
    out.update(extra)
    return out


def _thread_name(pid: int, tid: int, name: str) -> Dict[str, object]:
    return _event(
        "thread_name", "M", 0, pid, tid, args={"name": name}
    )


def _profiled_events(
    trace: SuperstepTrace,
    start: float,
    pid: int,
) -> tuple:
    """Span events for one profiled superstep, placed at its slot.

    Span times are clamped into ``[0, t_smvp]`` (worker clocks may be
    marginally skewed) so every event stays inside the superstep's
    timeline slot.  Returns ``(events, used_verify, used_wire, pes)``.
    """
    t_smvp = trace.t_smvp
    events: List[Dict[str, object]] = []
    used_verify = False
    used_wire = False
    pes = 0
    for s in trace.pe_spans:
        t0 = min(max(s.t_start, 0.0), t_smvp)
        t1 = min(max(s.t_end, t0), t_smvp)
        args: Dict[str, object] = {"step": trace.step}
        if s.pe == HOST:
            tid = _HOST_KIND_TIDS.get(s.kind, 0)
            name = s.kind
            used_verify = used_verify or s.kind == "verify"
        elif s.kind == "wire":
            tid = WIRE_TID
            name = f"msg:{s.pe}->{s.dst}"
            args.update(words=int(s.words), src=s.pe, dst=s.dst)
            used_wire = True
        else:
            tid = PE_TID_BASE + s.pe
            name = s.kind
            pes = max(pes, s.pe + 1)
        events.append(
            _event(
                name,
                "X",
                start + t0 * _US,
                pid,
                tid,
                dur=(t1 - t0) * _US,
                args=args,
            )
        )
    return events, used_verify, used_wire, pes


def trace_events(
    traces: Sequence[SuperstepTrace],
    pid: int = 0,
    origin_us: float = 0.0,
) -> List[Dict[str, object]]:
    """Phase + per-PE events for a sequence of supersteps."""
    events: List[Dict[str, object]] = []
    pes_seen = 0
    verify_seen = False
    wire_seen = False
    cursor = origin_us
    for trace in traces:
        start = cursor
        if getattr(trace, "pe_spans", None) is not None:
            evs, used_verify, used_wire, pes = _profiled_events(
                trace, start, pid
            )
            events.extend(evs)
            verify_seen = verify_seen or used_verify
            wire_seen = wire_seen or used_wire
            pes_seen = max(pes_seen, pes)
            events.append(
                _event(
                    "traffic",
                    "C",
                    start,
                    pid,
                    0,
                    args={
                        "words": trace.total_words,
                        "blocks": trace.total_blocks,
                    },
                )
            )
            cursor = start + trace.t_smvp * _US
            continue
        args = {
            "step": trace.step,
            "kernel": trace.kernel,
            "backend": trace.backend,
        }
        phase_durations = (
            trace.t_scatter,
            trace.t_comp,
            trace.t_comm,
            trace.t_gather,
        )
        t = start
        exchange_start = start
        for tid, (phase, duration) in enumerate(
            zip(PHASE_TRACKS, phase_durations)
        ):
            if phase == "exchange":
                exchange_start = t
            events.append(
                _event(
                    phase,
                    "X",
                    t,
                    pid,
                    tid,
                    dur=duration * _US,
                    args=args,
                )
            )
            t += duration * _US
        # Per-PE exchange windows with traffic counts.
        num_pes = len(trace.words_sent)
        pes_seen = max(pes_seen, num_pes)
        for pe in range(num_pes):
            events.append(
                _event(
                    "exchange",
                    "X",
                    exchange_start,
                    pid,
                    PE_TID_BASE + pe,
                    dur=trace.t_comm * _US,
                    args={
                        "step": trace.step,
                        "words": int(trace.words_sent[pe]),
                        "blocks": int(trace.blocks_sent[pe]),
                    },
                )
            )
        # Per-superstep traffic counter samples.
        events.append(
            _event(
                "traffic",
                "C",
                exchange_start,
                pid,
                0,
                args={
                    "words": trace.total_words,
                    "blocks": trace.total_blocks,
                },
            )
        )
        cursor = start + trace.t_smvp * _US
    # Track naming metadata.
    meta = [
        _thread_name(pid, tid, f"phase:{phase}")
        for tid, phase in enumerate(PHASE_TRACKS)
    ]
    if verify_seen:
        meta.append(_thread_name(pid, VERIFY_TID, "phase:verify"))
    if wire_seen:
        meta.append(_thread_name(pid, WIRE_TID, "wire"))
    meta.extend(
        _thread_name(pid, PE_TID_BASE + pe, f"PE {pe}")
        for pe in range(pes_seen)
    )
    return meta + events


def span_events(
    spans: Iterable[Span],
    pid: int = 0,
) -> List[Dict[str, object]]:
    """Registry stage spans as complete events, one track per name.

    Span timestamps are rebased so the earliest span starts at 0.
    """
    spans = list(spans)
    if not spans:
        return []
    origin = min(s.t_start for s in spans)
    tracks = sorted({s.track for s in spans})
    tids = {track: STAGE_TID_BASE + i for i, track in enumerate(tracks)}
    events = [
        _thread_name(pid, tids[track], f"stage:{track}")
        for track in tracks
    ]
    for span in spans:
        events.append(
            _event(
                span.name,
                "X",
                (span.t_start - origin) * _US,
                pid,
                tids[span.track],
                dur=span.duration * _US,
            )
        )
    return events


def chrome_trace(
    log: Optional[TraceLog] = None,
    registry: Optional[MetricsRegistry] = None,
    pid: int = 0,
) -> Dict[str, object]:
    """The full Perfetto-loadable document for a run."""
    events: List[Dict[str, object]] = []
    if registry is not None:
        events.extend(span_events(registry.spans, pid=pid))
    if log is not None:
        events.extend(trace_events(log.traces, pid=pid))
    validate_trace_events(events)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def render_chrome_trace(
    log: Optional[TraceLog] = None,
    registry: Optional[MetricsRegistry] = None,
    pid: int = 0,
) -> str:
    """Chrome-trace JSON text for ``--timeline-out`` / the CLI."""
    return (
        json.dumps(chrome_trace(log, registry, pid=pid), sort_keys=True)
        + "\n"
    )


def validate_trace_events(events: Iterable[Dict[str, object]]) -> None:
    """Assert the trace-event schema invariants we rely on.

    Every event carries ``ph``/``ts``/``pid``/``tid``; complete ("X")
    events also carry ``name`` and a non-negative ``dur``; and no two
    complete events on the same ``(pid, tid)`` track overlap in time
    (beyond a sub-microsecond tolerance for shared clock readings) —
    a track is one timeline row, and overlapping rows render as lies.
    Raises ``ValueError`` on the first violation.
    """
    events = list(events)
    for i, event in enumerate(events):
        for key in REQUIRED_EVENT_KEYS:
            if key not in event:
                raise ValueError(
                    f"trace event {i} missing {key!r}: {event!r}"
                )
        if not isinstance(event["ph"], str) or not event["ph"]:
            raise ValueError(f"trace event {i} has invalid ph: {event!r}")
        if event["ph"] == "X":
            if "name" not in event or "dur" not in event:
                raise ValueError(
                    f"complete event {i} needs name and dur: {event!r}"
                )
            if float(event["dur"]) < 0:  # type: ignore[arg-type]
                raise ValueError(
                    f"complete event {i} has negative dur: {event!r}"
                )
        if float(event["ts"]) < 0:  # type: ignore[arg-type]
            raise ValueError(
                f"trace event {i} has negative ts: {event!r}"
            )
    spans_by_track: Dict[tuple, List[tuple]] = {}
    for i, event in enumerate(events):
        if event.get("ph") != "X":
            continue
        ts = float(event["ts"])  # type: ignore[arg-type]
        spans_by_track.setdefault((event["pid"], event["tid"]), []).append(
            (ts, ts + float(event["dur"]), i)  # type: ignore[arg-type]
        )
    for (epid, etid), track in sorted(spans_by_track.items()):
        track.sort()
        prev_end = None
        prev_i = None
        for ts, te, i in track:
            if prev_end is not None and ts < prev_end - _OVERLAP_EPS_US:
                raise ValueError(
                    f"overlapping spans on track pid={epid} tid={etid}: "
                    f"event {prev_i} runs past {ts:.3f}us where event "
                    f"{i} starts (ends {prev_end:.3f}us)"
                )
            if prev_end is None or te > prev_end:
                prev_end, prev_i = te, i
