"""Process-wide metrics registry: counters, gauges, histograms, spans.

The registry is the observability core of the reproduction.  Every
pipeline stage (mesh generation, partitioning, assembly, the superstep
engine, the exchange transports, the fault machinery, the BSP
simulator) calls the cheap module-level helpers in this module; when no
registry is installed those helpers return immediately, so the
instrumented paths stay bit-identical to the uninstrumented ones and
cost one global load plus one ``is None`` test.

Determinism contract
--------------------

The registry itself never reads a clock.  It does not import ``time``;
wall-clock access happens only when a caller *explicitly* attaches a
clock callable (normally :func:`repro.util.clock.now`) via
:meth:`MetricsRegistry.attach_clock` or the ``clock=`` constructor
argument.  Without an attached clock, span context managers are no-ops
and every recorded value is a pure function of the workload — two runs
with the same seed produce byte-identical snapshots.

Mirrors the kernel-registry pattern (:mod:`repro.smvp.kernels`): a
module-level instance reached through :func:`get_registry` /
:func:`set_registry`, with :func:`use_registry` for scoped
installation.
"""

from __future__ import annotations

import bisect
import re
from contextlib import contextmanager
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

#: A monotonic-seconds callable, e.g. ``repro.util.clock.now``.
Clock = Callable[[], float]

#: Canonical (sorted) form of a label set, usable as a dict key.
LabelKey = Tuple[Tuple[str, str], ...]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Default histogram buckets for second-scale durations (upper bounds;
#: an implicit +Inf bucket catches the overflow).
DEFAULT_SECONDS_BUCKETS: Tuple[float, ...] = (
    1e-6,
    1e-5,
    1e-4,
    1e-3,
    1e-2,
    1e-1,
    1.0,
    10.0,
)


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


class Counter:
    """A monotonically increasing sum, optionally split by labels."""

    kind = "counter"

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = _check_name(name)
        self.help_text = help_text
        self._series: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1, **labels: object) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name} cannot decrease (amount={amount})"
            )
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: object) -> float:
        return self._series.get(_label_key(labels), 0)

    @property
    def total(self) -> float:
        return sum(self._series.values())

    def series(self) -> List[Tuple[LabelKey, float]]:
        return sorted(self._series.items())


class Gauge:
    """A point-in-time value, optionally split by labels."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = _check_name(name)
        self.help_text = help_text
        self._series: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        self._series[_label_key(labels)] = float(value)

    def value(self, **labels: object) -> float:
        return self._series.get(_label_key(labels), 0.0)

    def series(self) -> List[Tuple[LabelKey, float]]:
        return sorted(self._series.items())


class Histogram:
    """Fixed-bucket histogram (cumulative-bucket Prometheus style).

    ``buckets`` are ascending finite upper bounds; observations above
    the last bound land in the implicit +Inf bucket.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
        help_text: str = "",
    ) -> None:
        self.name = _check_name(name)
        self.help_text = help_text
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"histogram {name} buckets must be ascending and unique: "
                f"{buckets!r}"
            )
        self.buckets = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative_counts(self) -> List[int]:
        """Per-bound cumulative counts, +Inf last (Prometheus ``le``)."""
        out: List[int] = []
        running = 0
        for c in self.counts:
            running += c
            out.append(running)
        return out


@dataclass(frozen=True)
class Span:
    """A named interval on a track, in attached-clock seconds."""

    name: str
    t_start: float
    t_end: float
    track: str = "stages"

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


class MetricsRegistry:
    """Container for named metrics plus an optional attached clock."""

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self._metrics: Dict[str, object] = {}
        self._clock = clock
        self.spans: List[Span] = []

    # -- clock ---------------------------------------------------------

    @property
    def clock(self) -> Optional[Clock]:
        return self._clock

    def attach_clock(self, clock: Clock) -> None:
        """Explicitly opt this registry into wall-clock span timing."""
        self._clock = clock

    # -- metric accessors (get-or-create) ------------------------------

    def _get(self, name: str, kind: str, factory: Callable[[], object]):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif metric.kind != kind:  # type: ignore[attr-defined]
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{metric.kind}, not {kind}"  # type: ignore[attr-defined]
            )
        return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get(
            name, "counter", lambda: Counter(name, help_text)
        )

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get(name, "gauge", lambda: Gauge(name, help_text))

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
        help_text: str = "",
    ) -> Histogram:
        return self._get(
            name, "histogram", lambda: Histogram(name, buckets, help_text)
        )

    def metrics(self) -> List[object]:
        """All registered metrics, sorted by name."""
        return [self._metrics[k] for k in sorted(self._metrics)]

    # -- spans ---------------------------------------------------------

    def add_span(
        self, name: str, t_start: float, t_end: float, track: str = "stages"
    ) -> None:
        """Record a pre-measured interval (no clock read happens here)."""
        self.spans.append(Span(name, float(t_start), float(t_end), track))

    @contextmanager
    def span(self, name: str, track: str = "stages") -> Iterator[None]:
        """Time a block with the attached clock; no-op without one."""
        clock = self._clock
        if clock is None:
            yield
            return
        t0 = clock()
        try:
            yield
        finally:
            self.add_span(name, t0, clock(), track)

    # -- snapshot ------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """A deterministic, JSON-ready dump of everything recorded."""
        counters: Dict[str, object] = {}
        gauges: Dict[str, object] = {}
        histograms: Dict[str, object] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                counters[name] = {
                    "help": metric.help_text,
                    "series": [
                        {"labels": dict(key), "value": value}
                        for key, value in metric.series()
                    ],
                    "total": metric.total,
                }
            elif isinstance(metric, Gauge):
                gauges[name] = {
                    "help": metric.help_text,
                    "series": [
                        {"labels": dict(key), "value": value}
                        for key, value in metric.series()
                    ],
                }
            elif isinstance(metric, Histogram):
                histograms[name] = {
                    "help": metric.help_text,
                    "buckets": list(metric.buckets),
                    "counts": list(metric.counts),
                    "sum": metric.sum,
                    "count": metric.count,
                }
        return {
            "version": 1,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "spans": [
                {
                    "name": s.name,
                    "track": s.track,
                    "t_start": s.t_start,
                    "t_end": s.t_end,
                }
                for s in self.spans
            ],
        }


# ---------------------------------------------------------------------------
# Module-level installation, mirroring the kernel registry.
# ---------------------------------------------------------------------------

_REGISTRY: Optional[MetricsRegistry] = None


def get_registry() -> Optional[MetricsRegistry]:
    """The installed registry, or ``None`` (instrumentation disabled)."""
    return _REGISTRY


def set_registry(
    registry: Optional[MetricsRegistry],
) -> Optional[MetricsRegistry]:
    """Install (or clear, with ``None``) the process registry.

    Returns the previously installed registry so callers can restore it.
    """
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Install ``registry`` for the duration of a ``with`` block."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


# -- hot-path helpers: one global load + None test when disabled ----------


def count(name: str, amount: float = 1, **labels: object) -> None:
    """Increment a counter on the installed registry, if any."""
    reg = _REGISTRY
    if reg is not None:
        reg.counter(name).inc(amount, **labels)


def set_gauge(name: str, value: float, **labels: object) -> None:
    """Set a gauge on the installed registry, if any."""
    reg = _REGISTRY
    if reg is not None:
        reg.gauge(name).set(value, **labels)


def observe(
    name: str,
    value: float,
    buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
) -> None:
    """Observe into a histogram on the installed registry, if any."""
    reg = _REGISTRY
    if reg is not None:
        reg.histogram(name, buckets).observe(value)


@contextmanager
def stage_span(name: str, track: str = "stages") -> Iterator[None]:
    """Time a block iff a registry with an attached clock is installed."""
    reg = _REGISTRY
    if reg is None or reg.clock is None:
        yield
        return
    with reg.span(name, track):
        yield


def record_fault_stats(stats: object, component: str) -> None:
    """Fold a ``FaultStats``-shaped dataclass into fault counters.

    Duck-typed on ``__dataclass_fields__`` so the telemetry layer does
    not import :mod:`repro.faults` (which would invert the dependency
    direction).  Each integer field becomes one labelled series of
    ``repro_fault_events_total``.
    """
    reg = _REGISTRY
    if reg is None or stats is None:
        return
    fields = getattr(stats, "__dataclass_fields__", None)
    if fields is None:
        return
    events = reg.counter(
        "repro_fault_events_total",
        "fault injections/detections/recoveries by kind",
    )
    for field_name in sorted(fields):
        value = getattr(stats, field_name)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        if value:
            events.inc(value, kind=field_name, component=component)


#: Detection-latency buckets, in supersteps (0 = caught inline).
SDC_LATENCY_BUCKETS: Tuple[float, ...] = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0)


def record_sdc_event(event: object) -> None:
    """Fold one silent-data-corruption event into the SDC counters.

    Duck-typed like :func:`record_fault_stats` — the telemetry layer
    never imports :mod:`repro.smvp.abft`.  Expects the attribute shape
    of ``abft.SdcEvent``: ``action`` (injected / detected / recomputed
    / repaired / escalated / escaped), ``phase`` (input / compute /
    exchange), ``kind`` (flip-x / flip-y / flip-k / sticky), ``pe``,
    and ``physical_pe``.
    """
    reg = _REGISTRY
    if reg is None or event is None:
        return
    reg.counter(
        "repro_sdc_events_total",
        "silent-data-corruption injections/detections/recoveries",
    ).inc(
        action=getattr(event, "action", "unknown"),
        phase=getattr(event, "phase", "unknown"),
        kind=getattr(event, "kind", "unknown"),
        pe=getattr(event, "physical_pe", -1),
    )


def record_sdc_latency(supersteps: float) -> None:
    """Observe one SDC detection latency (in supersteps) if recording."""
    reg = _REGISTRY
    if reg is not None:
        reg.histogram(
            "repro_sdc_detection_latency_supersteps",
            SDC_LATENCY_BUCKETS,
            "supersteps between an SDC injection and its detection",
        ).observe(supersteps)


def record_eviction(event: object) -> None:
    """Fold one PE-eviction event into the resilience counters.

    Duck-typed like :func:`record_fault_stats` — the telemetry layer
    never imports :mod:`repro.resilience`.  Expects the attribute shape
    of ``resilience.EvictionEvent``: ``dead_pe``, ``superstep``,
    ``migrated_words``, ``migrated_blocks``, ``repartition_flops``,
    ``recovery_source``.
    """
    reg = _REGISTRY
    if reg is None or event is None:
        return
    labels = {
        "dead_pe": getattr(event, "dead_pe", -1),
        "source": getattr(event, "recovery_source", "unknown"),
    }
    reg.counter(
        "repro_pe_evictions_total", "permanent PE failures evicted online"
    ).inc(**labels)
    reg.counter(
        "repro_eviction_migrated_words_total",
        "state words migrated to survivors during evictions",
    ).inc(getattr(event, "migrated_words", 0), **labels)
    reg.counter(
        "repro_eviction_migrated_blocks_total",
        "state-migration messages during evictions",
    ).inc(getattr(event, "migrated_blocks", 0), **labels)
    reg.counter(
        "repro_eviction_repartition_flops_total",
        "redistribution work performed during evictions",
    ).inc(getattr(event, "repartition_flops", 0), **labels)
    reg.gauge(
        "repro_eviction_last_superstep", "superstep of the latest eviction"
    ).set(getattr(event, "superstep", -1))


def record_scale_event(event: object) -> None:
    """Fold one elastic scale action into the autoscaling counters.

    Duck-typed like :func:`record_eviction` — expects the attribute
    shape of ``resilience.ScaleEvent``: ``kind`` ("grow" | "shrink" |
    "readmit"), ``pe``, ``superstep``, ``num_pes_after``,
    ``migrated_words``, ``migrated_blocks``, ``readmitted``.
    """
    reg = _REGISTRY
    if reg is None or event is None:
        return
    kind = getattr(event, "kind", "unknown")
    labels = {"kind": kind, "pe": getattr(event, "pe", -1)}
    reg.counter(
        "repro_scale_events_total",
        "elastic scale actions (grow / shrink / readmit)",
    ).inc(**labels)
    if getattr(event, "readmitted", False):
        reg.counter(
            "repro_scale_readmissions_total",
            "hardware readmitted after probation (quarantine releases "
            "and evicted-PE rejoins)",
        ).inc(kind=kind)
    reg.counter(
        "repro_scale_migrated_words_total",
        "state words migrated during elastic reconfigurations",
    ).inc(getattr(event, "migrated_words", 0), kind=kind)
    reg.counter(
        "repro_scale_migrated_blocks_total",
        "state-migration messages during elastic reconfigurations",
    ).inc(getattr(event, "migrated_blocks", 0), kind=kind)
    reg.gauge(
        "repro_scale_last_superstep",
        "superstep of the latest elastic scale action",
    ).set(getattr(event, "superstep", -1))
    reg.gauge(
        "repro_scale_num_pes", "PE count after the latest scale action"
    ).set(getattr(event, "num_pes_after", -1))
