"""Typed failures raised by the fault-tolerance machinery.

Every error the detection/recovery layers can surface derives from
:class:`FaultError`, so callers can catch the whole family with one
``except`` while tests assert the precise subtype.
"""

from __future__ import annotations


class FaultError(Exception):
    """Base class for all fault-subsystem errors."""


class ExchangeFaultError(FaultError):
    """A block exchange could not be completed within the retry budget.

    Carries the failing link (``src``/``dst``) and superstep so the
    resilience supervisor can blame the right PE when escalating.
    """

    def __init__(
        self,
        message: str,
        src: "int | None" = None,
        dst: "int | None" = None,
        step: "int | None" = None,
    ) -> None:
        super().__init__(message)
        self.src = src
        self.dst = dst
        self.step = step


class NumericalFaultError(FaultError):
    """A computed state contains NaN/Inf or fails a residual check.

    Carries the blamed context — PE, superstep, and phase — when the
    detecting layer knows it, so supervisor logs and chaos reports can
    print actionable blame lines instead of a bare message.
    """

    def __init__(
        self,
        message: str,
        pe: "int | None" = None,
        step: "int | None" = None,
        phase: "str | None" = None,
    ) -> None:
        super().__init__(message)
        self.pe = pe
        self.step = step
        self.phase = phase

    def blame(self) -> str:
        """One-line blame summary from whatever context is attached."""
        parts = []
        if self.pe is not None:
            parts.append(f"PE {self.pe}")
        if self.step is not None:
            parts.append(f"superstep {self.step}")
        if self.phase is not None:
            parts.append(f"phase {self.phase}")
        return ", ".join(parts) if parts else "unattributed"


class SdcFaultError(FaultError):
    """Silent data corruption that inline ABFT recovery could not heal.

    Raised by the executor's checksum verification when recomputing the
    blamed PE's superstep keeps failing (the sticky bad-DIMM/bad-core
    model).  Carries the blamed PE (current numbering), superstep, and
    phase (``"input"`` / ``"compute"`` / ``"exchange"``) so the
    resilience supervisor can escalate against the right PE directly —
    no link-endpoint ambiguity as with :class:`ExchangeFaultError`.
    """

    def __init__(
        self,
        message: str,
        pe: "int | None" = None,
        step: "int | None" = None,
        phase: "str | None" = None,
    ) -> None:
        super().__init__(message)
        self.pe = pe
        self.step = step
        self.phase = phase


class RecoveryDeadlineError(FaultError):
    """The run's total recovery effort exceeded its superstep budget.

    Raised by the resilience supervisor when the cumulative count of
    retried supersteps passes ``RecoveryPolicy.recovery_budget`` — a
    clock-free escalation deadline that turns "every PE is flaky, retry
    forever" into a typed, reportable failure.
    """

    def __init__(
        self,
        message: str,
        budget: "int | None" = None,
        retried: "int | None" = None,
        step: "int | None" = None,
    ) -> None:
        super().__init__(message)
        self.budget = budget
        self.retried = retried
        self.step = step


class CheckpointError(FaultError):
    """A checkpoint file is corrupt, incomplete, or incompatible."""


class CheckpointCompatibilityError(CheckpointError):
    """A checkpoint belongs to a different data distribution.

    Raised instead of silently mis-splicing when the checkpoint header's
    PE count or row-ownership hash disagrees with the distribution the
    caller is about to restore into.
    """


class PermanentFailureError(FaultError):
    """A PE has been declared permanently dead.

    Raised by the resilience supervisor when a PE's failures escalate
    past every recovery policy (retry, quarantine) and no eviction is
    possible — e.g. the last surviving pair, or no recoverable state
    for the dead PE's exclusive rows.
    """

    def __init__(
        self, message: str, pe: "int | None" = None, step: "int | None" = None
    ) -> None:
        super().__init__(message)
        self.pe = pe
        self.step = step
