"""Typed failures raised by the fault-tolerance machinery.

Every error the detection/recovery layers can surface derives from
:class:`FaultError`, so callers can catch the whole family with one
``except`` while tests assert the precise subtype.
"""

from __future__ import annotations


class FaultError(Exception):
    """Base class for all fault-subsystem errors."""


class ExchangeFaultError(FaultError):
    """A block exchange could not be completed within the retry budget.

    Carries the failing link (``src``/``dst``) and superstep so the
    resilience supervisor can blame the right PE when escalating.
    """

    def __init__(
        self,
        message: str,
        src: "int | None" = None,
        dst: "int | None" = None,
        step: "int | None" = None,
    ) -> None:
        super().__init__(message)
        self.src = src
        self.dst = dst
        self.step = step


class NumericalFaultError(FaultError):
    """A computed state contains NaN/Inf or fails a residual check."""


class CheckpointError(FaultError):
    """A checkpoint file is corrupt, incomplete, or incompatible."""


class CheckpointCompatibilityError(CheckpointError):
    """A checkpoint belongs to a different data distribution.

    Raised instead of silently mis-splicing when the checkpoint header's
    PE count or row-ownership hash disagrees with the distribution the
    caller is about to restore into.
    """


class PermanentFailureError(FaultError):
    """A PE has been declared permanently dead.

    Raised by the resilience supervisor when a PE's failures escalate
    past every recovery policy (retry, quarantine) and no eviction is
    possible — e.g. the last surviving pair, or no recoverable state
    for the dead PE's exclusive rows.
    """

    def __init__(
        self, message: str, pe: "int | None" = None, step: "int | None" = None
    ) -> None:
        super().__init__(message)
        self.pe = pe
        self.step = step
