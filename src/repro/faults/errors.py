"""Typed failures raised by the fault-tolerance machinery.

Every error the detection/recovery layers can surface derives from
:class:`FaultError`, so callers can catch the whole family with one
``except`` while tests assert the precise subtype.
"""

from __future__ import annotations


class FaultError(Exception):
    """Base class for all fault-subsystem errors."""


class ExchangeFaultError(FaultError):
    """A block exchange could not be completed within the retry budget."""


class NumericalFaultError(FaultError):
    """A computed state contains NaN/Inf or fails a residual check."""


class CheckpointError(FaultError):
    """A checkpoint file is corrupt, incomplete, or incompatible."""
