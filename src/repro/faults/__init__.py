"""Fault injection, detection, and recovery for the SMVP pipeline.

The paper's 6000-superstep runs assume a perfect machine: every PE
computes at full speed, every exchanged block arrives intact, and a run
that starts finishes.  Real irregular-communication workloads are the
opposite — the pairwise exchange is the fragile hot path, and one slow
or lost block stalls every PE at the barrier.  This package adds the
missing reliability axis:

* :mod:`~repro.faults.config` — seeded fault model
  (:class:`FaultConfig`): stragglers, dropped/corrupted/duplicated
  blocks, transient PE failures.
* :mod:`~repro.faults.injector` — deterministic counter-based
  :class:`FaultInjector` consulted by both the BSP simulator (timing
  effects) and the distributed executor (data effects).
* :mod:`~repro.faults.detection` — per-block CRC-32 checksums, NaN/Inf
  guards, residual verification, and the :class:`FaultStats` tally.
* :mod:`~repro.faults.recovery` — retransmit-with-backoff timing and
  checkpoint/restart (:class:`CheckpointManager`) for long runs.
* :mod:`~repro.faults.errors` — the typed error family.

The reliability *experiment* built on top lives in
:mod:`repro.tables.reliability` (CLI: ``repro-faults``).
"""

from repro.faults.config import FaultConfig
from repro.faults.detection import (
    FaultStats,
    block_checksum,
    check_finite,
    residual_relative_error,
    verify_block,
    verify_residual,
)
from repro.faults.errors import (
    CheckpointCompatibilityError,
    CheckpointError,
    ExchangeFaultError,
    FaultError,
    NumericalFaultError,
    PermanentFailureError,
    RecoveryDeadlineError,
    SdcFaultError,
)
from repro.faults.injector import (
    BlockFault,
    FaultInjector,
    SdcTarget,
    TransmissionOutcome,
)
from repro.faults.recovery import (
    Checkpoint,
    CheckpointManager,
    retransmit_penalty,
)

__all__ = [
    "BlockFault",
    "Checkpoint",
    "CheckpointCompatibilityError",
    "CheckpointError",
    "CheckpointManager",
    "ExchangeFaultError",
    "FaultConfig",
    "FaultError",
    "FaultInjector",
    "FaultStats",
    "NumericalFaultError",
    "PermanentFailureError",
    "RecoveryDeadlineError",
    "SdcFaultError",
    "SdcTarget",
    "TransmissionOutcome",
    "block_checksum",
    "check_finite",
    "residual_relative_error",
    "retransmit_penalty",
    "verify_block",
    "verify_residual",
]
