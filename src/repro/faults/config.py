"""Fault-model configuration.

A :class:`FaultConfig` is a complete, seeded description of the faults
a run should experience:

* **Stragglers** — per superstep, each PE independently runs slow with
  probability ``straggler_rate``; the extra compute time is an
  exponential multiple of its nominal time (mean
  ``straggler_mean_slowdown``).  This models OS jitter, contention, and
  the "one slow PE stalls the barrier" pathology the paper's
  barrier-synchronized supersteps are maximally exposed to.
* **Block faults** — each directed block transfer is independently
  dropped, bit-flipped in flight, or duplicated.  Drops are detected by
  timeout, corruptions by checksum; both trigger a retransmit with
  exponential backoff (see :mod:`repro.faults.recovery`).
* **Transient PE failures** — per superstep, a PE crashes with
  probability ``pe_failure_rate`` and restarts from its last state,
  recomputing the step (its compute time doubles) plus a fixed restart
  penalty in simulated seconds.
* **Silent data corruption (SDC)** — per PE per superstep, a bit flips
  in *memory or compute* rather than in flight: in the local input
  vector x (``flip_x_rate``), the local kernel output y
  (``flip_y_rate``), or the assembled local stiffness block K
  (``flip_k_rate``; persistent until scrubbed).  ``sticky_pes`` models
  a bad DIMM/core: those PEs re-corrupt their kernel output on *every*
  compute, including recovery recomputes, so inline healing fails and
  the resilience ladder must escalate.  CRC-32 never sees these —
  they happen outside the wire — which is exactly why the ABFT
  checksum checks in :mod:`repro.smvp.abft` exist.

All draws are derived from ``seed`` via counter-based streams keyed on
(domain, step, PE/pair, attempt) — see :mod:`repro.faults.injector` —
so a configuration is exactly reproducible regardless of the order in
which the simulator or executor asks questions.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple


@dataclass(frozen=True)
class FaultConfig:
    """Seeded description of the faults to inject into a run."""

    seed: int = 0
    #: Probability a PE straggles in a given superstep.
    straggler_rate: float = 0.0
    #: Mean *extra* compute time of a straggler, as a multiple of its
    #: nominal compute time (exponentially distributed).
    straggler_mean_slowdown: float = 1.0
    #: Per directed block transmission: probability it is lost.
    drop_rate: float = 0.0
    #: Per directed block transmission: probability a bit flips in flight.
    bitflip_rate: float = 0.0
    #: Per directed block transmission: probability it arrives twice.
    duplicate_rate: float = 0.0
    #: Per PE per superstep: probability of a transient crash+restart.
    pe_failure_rate: float = 0.0
    #: Simulated seconds to restart a crashed PE (checkpoint reload etc.).
    pe_restart_penalty: float = 1e-3
    #: Retry budget per block before the exchange is declared lost.
    max_retries: int = 8
    #: Timeout before a missing block is retransmitted, as a multiple of
    #: the block's nominal transfer time (T_l + words * T_w).
    timeout_factor: float = 4.0
    #: Backoff multiplier applied to the timeout on successive retries.
    backoff_factor: float = 2.0
    #: Per PE per superstep: probability of a bit-flip in the local
    #: input vector x after scatter (memory corruption on the way in).
    flip_x_rate: float = 0.0
    #: Per PE per superstep: probability of a bit-flip in the local
    #: kernel output y (a compute/register fault).
    flip_y_rate: float = 0.0
    #: Per PE per superstep: probability of a bit-flip in the local
    #: assembled stiffness block K.  Matrix corruption is *persistent*:
    #: it keeps poisoning every product until the word is scrubbed.
    flip_k_rate: float = 0.0
    #: Physical PE ids whose kernel output is corrupted on *every*
    #: compute from ``sticky_from_step`` on — the bad-DIMM/bad-core
    #: model that defeats inline recompute and forces escalation.
    sticky_pes: Tuple[int, ...] = ()
    #: First superstep at which the sticky PEs start corrupting.
    sticky_from_step: int = 0
    #: Fractional jitter amplitude on each retry timeout: every stall is
    #: scaled by a factor in ``[1 - a, 1 + a)`` drawn deterministically
    #: from ``seed`` keyed on (step, src, dst, attempt), so reliability
    #: tables stay reproducible while avoiding the lock-step retry
    #: storms a fixed multiplier produces.  0 disables jitter.
    backoff_jitter: float = 0.1

    def __post_init__(self) -> None:
        for name in (
            "straggler_rate",
            "drop_rate",
            "bitflip_rate",
            "duplicate_rate",
            "pe_failure_rate",
            "flip_x_rate",
            "flip_y_rate",
            "flip_k_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.drop_rate + self.bitflip_rate + self.duplicate_rate > 1.0:
            raise ValueError("block fault rates must sum to at most 1")
        if self.flip_x_rate + self.flip_y_rate + self.flip_k_rate > 1.0:
            raise ValueError("SDC flip rates must sum to at most 1")
        object.__setattr__(
            self, "sticky_pes", tuple(int(pe) for pe in self.sticky_pes)
        )
        if any(pe < 0 for pe in self.sticky_pes):
            raise ValueError("sticky_pes must be non-negative PE ids")
        if len(set(self.sticky_pes)) != len(self.sticky_pes):
            raise ValueError("sticky_pes must be distinct")
        if self.sticky_from_step < 0:
            raise ValueError("sticky_from_step must be non-negative")
        if self.straggler_mean_slowdown < 0:
            raise ValueError("straggler_mean_slowdown must be non-negative")
        if self.pe_restart_penalty < 0:
            raise ValueError("pe_restart_penalty must be non-negative")
        if self.max_retries < 1:
            raise ValueError("max_retries must be at least 1")
        if self.timeout_factor <= 0:
            raise ValueError("timeout_factor must be positive")
        if self.backoff_factor < 1:
            raise ValueError("backoff_factor must be at least 1")
        if not 0.0 <= self.backoff_jitter < 1.0:
            raise ValueError("backoff_jitter must be in [0, 1)")

    @property
    def enabled(self) -> bool:
        """Whether any fault can actually occur under this config."""
        return (
            self.straggler_rate > 0
            or self.drop_rate > 0
            or self.bitflip_rate > 0
            or self.duplicate_rate > 0
            or self.pe_failure_rate > 0
            or self.sdc_enabled
        )

    @property
    def comm_enabled(self) -> bool:
        """Whether any *in-flight* block fault can occur (the faults the
        exchange middleware's CRC + retransmit protocol handles)."""
        return (
            self.drop_rate > 0
            or self.bitflip_rate > 0
            or self.duplicate_rate > 0
        )

    @property
    def sdc_enabled(self) -> bool:
        """Whether any memory/compute corruption can occur (the faults
        only the ABFT checks in :mod:`repro.smvp.abft` can see)."""
        return (
            self.flip_x_rate > 0
            or self.flip_y_rate > 0
            or self.flip_k_rate > 0
            or bool(self.sticky_pes)
        )

    @classmethod
    def disabled(cls, seed: int = 0) -> "FaultConfig":
        """All rates zero — injection is a no-op."""
        return cls(seed=seed)

    @classmethod
    def uniform(cls, rate: float, seed: int = 0) -> "FaultConfig":
        """One-knob config used by the reliability sweep.

        ``rate`` drives the dominant failure modes directly (stragglers
        and drops), with corruption/duplication at half, silent
        memory/compute flips at a fifth (x and y) and a tenth (K), and
        transient PE crashes at a tenth of it — roughly the relative
        frequencies reported for production clusters.
        """
        if not 0.0 <= rate <= 0.5:
            raise ValueError("uniform rate must be in [0, 0.5]")
        return cls(
            seed=seed,
            straggler_rate=rate,
            drop_rate=rate,
            bitflip_rate=rate / 2.0,
            duplicate_rate=rate / 2.0,
            pe_failure_rate=rate / 10.0,
            flip_x_rate=rate / 5.0,
            flip_y_rate=rate / 5.0,
            flip_k_rate=rate / 10.0,
        )

    def with_seed(self, seed: int) -> "FaultConfig":
        """The same fault mix under a different random seed."""
        return replace(self, seed=seed)
