"""Deterministic, seeded fault injection.

The injector answers point questions — "does PE 3 straggle in step
17?", "what happens to the block from PE 2 to PE 5 on attempt 0?" —
with draws that depend only on ``(config.seed, domain, identifiers)``,
never on call order.  Each decision hashes its identifiers through
``numpy``'s :class:`~numpy.random.SeedSequence` (a counter-based
splittable stream), so the simulator and the executor can consult the
same injector in any order, any number of times, and observe one
consistent fault history.  Retries are independent draws (the ``attempt``
index is part of the key): a retransmitted block can fail again, which
is what makes exponential backoff worth modeling.
"""

from __future__ import annotations

import enum
from typing import NamedTuple, Tuple

import numpy as np

from repro.faults.config import FaultConfig


class TransmissionOutcome(NamedTuple):
    """Counts describing how one directed block eventually got through."""

    attempts: int  # transmissions performed (1 = clean first try)
    drops: int  # attempts lost in flight
    corruptions: int  # attempts rejected by the receiver's checksum
    duplicates: int  # redundant extra copies that arrived
    delivered: bool  # False when the retry budget was exhausted

    @property
    def failures(self) -> int:
        """Failed attempts that each triggered a timeout + retransmit."""
        return self.drops + self.corruptions

# Domain tags keep the per-decision streams disjoint.
_DOMAIN_STRAGGLE = 1
_DOMAIN_SLOWDOWN = 2
_DOMAIN_PE_FAIL = 3
_DOMAIN_BLOCK = 4
_DOMAIN_CORRUPT = 5
_DOMAIN_JITTER = 6
_DOMAIN_SDC = 7
_DOMAIN_SDC_SITE = 8


class BlockFault(enum.Enum):
    """Fate of one directed block transmission."""

    NONE = "none"
    DROP = "drop"
    BITFLIP = "bitflip"
    DUPLICATE = "duplicate"


class SdcTarget(enum.Enum):
    """Where a PE's silent data corruption strikes this superstep."""

    NONE = "none"
    INPUT = "input"  # the local x vector, after scatter
    OUTPUT = "output"  # the local kernel product y
    MATRIX = "matrix"  # the assembled local stiffness block K


def _uniform(seed: int, domain: int, *key: int) -> float:
    """Deterministic uniform in [0, 1) keyed on (seed, domain, key)."""
    ss = np.random.SeedSequence(entropy=(seed, domain) + key)
    return float(ss.generate_state(1, np.uint64)[0]) / float(2**64)


def _states(seed: int, domain: int, *key: int, n: int = 2) -> np.ndarray:
    """``n`` deterministic uint64 words keyed on (seed, domain, key)."""
    ss = np.random.SeedSequence(entropy=(seed, domain) + key)
    return ss.generate_state(n, np.uint64)


class FaultInjector:
    """Stateless oracle for all fault decisions of one configured run."""

    def __init__(self, config: FaultConfig) -> None:
        self.config = config

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    # -- compute-phase faults ---------------------------------------------

    def straggler_factor(self, pe: int, step: int = 0) -> float:
        """Multiplier (>= 1.0) on the PE's compute time this superstep."""
        cfg = self.config
        if cfg.straggler_rate <= 0 or cfg.straggler_mean_slowdown <= 0:
            return 1.0
        u = _uniform(cfg.seed, _DOMAIN_STRAGGLE, step, pe)
        if u >= cfg.straggler_rate:
            return 1.0
        v = _uniform(cfg.seed, _DOMAIN_SLOWDOWN, step, pe)
        # Exponential tail: mean extra time = straggler_mean_slowdown.
        return 1.0 - cfg.straggler_mean_slowdown * float(np.log1p(-v))

    def pe_failed(self, pe: int, step: int = 0) -> bool:
        """Whether the PE suffers a transient crash this superstep."""
        cfg = self.config
        if cfg.pe_failure_rate <= 0:
            return False
        return _uniform(cfg.seed, _DOMAIN_PE_FAIL, step, pe) < cfg.pe_failure_rate

    # -- silent data corruption (memory/compute faults) --------------------

    @property
    def comm_enabled(self) -> bool:
        """Whether any in-flight block fault can occur."""
        return self.config.comm_enabled

    @property
    def sdc_enabled(self) -> bool:
        """Whether any memory/compute corruption can occur."""
        return self.config.sdc_enabled

    def sdc_target(self, pe: int, step: int = 0) -> SdcTarget:
        """Which local array (if any) a *transient* flip strikes on this
        PE this superstep.  Keyed on the PE's physical id so the draw
        survives eviction renumbering."""
        cfg = self.config
        if cfg.flip_x_rate <= 0 and cfg.flip_y_rate <= 0 and cfg.flip_k_rate <= 0:
            return SdcTarget.NONE
        u = _uniform(cfg.seed, _DOMAIN_SDC, step, pe)
        if u < cfg.flip_x_rate:
            return SdcTarget.INPUT
        u -= cfg.flip_x_rate
        if u < cfg.flip_y_rate:
            return SdcTarget.OUTPUT
        u -= cfg.flip_y_rate
        if u < cfg.flip_k_rate:
            return SdcTarget.MATRIX
        return SdcTarget.NONE

    def sticky(self, pe: int, step: int = 0) -> bool:
        """Whether this (physical) PE's bad core corrupts its output on
        every compute — main path *and* recovery recomputes."""
        cfg = self.config
        return pe in cfg.sticky_pes and step >= cfg.sticky_from_step

    def sdc_site(
        self,
        values: np.ndarray,
        pe: int,
        step: int = 0,
        salt: int = 0,
        attempt: int = 0,
    ) -> Tuple[int, int]:
        """Pick the (word, bit) an SDC flip strikes in ``values``.

        The word is drawn among entries within three decades of the
        array's peak magnitude and the bit among the exponent/sign bits
        (52..63), so the induced error is at least half the entry's
        magnitude — orders of magnitude above the ABFT rounding
        tolerance.  A flip below that tolerance is numerically
        indistinguishable from legitimate rounding, so the interesting
        (and detectable) fault model is exactly the high-order flips.
        ``salt`` separates the input/output/matrix streams; ``attempt``
        separates a sticky PE's re-corruptions during recovery.
        """
        mags = np.abs(values)
        peak = float(mags.max()) if values.size else 0.0
        candidates = np.flatnonzero(mags >= peak / 1024.0)
        word_state, bit_state = _states(
            self.config.seed, _DOMAIN_SDC_SITE, step, pe, salt, attempt
        )
        word = int(candidates[int(word_state % np.uint64(len(candidates)))])
        # A zero word's sign bit is the one no-op flip (0.0 -> -0.0);
        # exclude it so every injected flip has a nonzero numeric
        # effect.  Any exponent-bit flip of a zero conjures a nonzero
        # value, so zero words stay in the fault model.
        span = 12 if values.reshape(-1)[word] != 0.0 else 11
        bit = 52 + int(bit_state % np.uint64(span))
        return word, bit

    def flip_sdc(
        self,
        array: np.ndarray,
        pe: int,
        step: int = 0,
        salt: int = 0,
        attempt: int = 0,
    ) -> Tuple[int, int, float, float]:
        """Flip one high-order bit of ``array`` in place.

        Returns ``(word, bit, old_value, new_value)`` — the executor
        records these for persistent matrix corruption so every backend
        observes the same poisoned product without mutating the
        backends' private prepared states.
        """
        flat = array.reshape(-1)
        if flat.size == 0:
            return (0, 0, 0.0, 0.0)
        word, bit = self.sdc_site(flat, pe, step, salt, attempt)
        bits = flat.view(np.uint64)
        old = float(flat[word])
        bits[word] ^= np.uint64(1) << np.uint64(bit)
        return (word, bit, old, float(flat[word]))

    # -- communication-phase faults ---------------------------------------

    def block_fault(
        self, src: int, dst: int, step: int = 0, attempt: int = 0
    ) -> BlockFault:
        """Fate of one directed block transmission (per attempt)."""
        cfg = self.config
        if cfg.drop_rate <= 0 and cfg.bitflip_rate <= 0 and cfg.duplicate_rate <= 0:
            return BlockFault.NONE
        u = _uniform(cfg.seed, _DOMAIN_BLOCK, step, src, dst, attempt)
        if u < cfg.drop_rate:
            return BlockFault.DROP
        u -= cfg.drop_rate
        if u < cfg.bitflip_rate:
            return BlockFault.BITFLIP
        u -= cfg.bitflip_rate
        if u < cfg.duplicate_rate:
            return BlockFault.DUPLICATE
        return BlockFault.NONE

    def corrupt(
        self, payload: np.ndarray, src: int, dst: int, step: int = 0, attempt: int = 0
    ) -> Tuple[int, int]:
        """Flip one bit of ``payload`` in place; returns (word, bit).

        The payload must be a contiguous float64 array (an exchange
        buffer).  A single flipped bit is the classic undetected-link-
        error model, and is exactly what a per-block checksum exists to
        catch.
        """
        if payload.size == 0:
            return (0, 0)
        word_state, bit_state = _states(
            self.config.seed, _DOMAIN_CORRUPT, step, src, dst, attempt
        )
        word = int(word_state % np.uint64(payload.size))
        bit = int(bit_state % np.uint64(64))
        # Flat view so block payloads (ndofs, r) corrupt a single
        # element exactly like vector payloads do.
        bits = payload.reshape(-1).view(np.uint64)
        bits[word] ^= np.uint64(1) << np.uint64(bit)
        return (word, bit)

    def backoff_jitter(
        self, src: int, dst: int, step: int = 0, attempt: int = 0
    ) -> float:
        """Multiplicative jitter on one retry timeout, in [1 - a, 1 + a).

        ``a`` is ``config.backoff_jitter``.  The draw is keyed on
        (seed, step, src, dst, attempt) like every other decision, so
        the same failed attempt always stalls for the same simulated
        time — reliability tables stay reproducible — while distinct
        links/retries desynchronize instead of retrying in lock step.
        """
        amplitude = self.config.backoff_jitter
        if amplitude <= 0.0:
            return 1.0
        u = _uniform(self.config.seed, _DOMAIN_JITTER, step, src, dst, attempt)
        return 1.0 - amplitude + 2.0 * amplitude * u

    def transmission_outcome(
        self, src: int, dst: int, step: int = 0
    ) -> "TransmissionOutcome":
        """Replay the retry loop for one directed block *for timing only*.

        The executor runs the same per-attempt decision sequence against
        real payloads; the BSP simulator only needs the outcome counts
        to account for simulated time, so the two layers observe one
        consistent fault history for the same (seed, step, src, dst).
        """
        cfg = self.config
        drops = corruptions = 0
        for attempt in range(cfg.max_retries + 1):
            fault = self.block_fault(src, dst, step, attempt)
            if fault is BlockFault.DROP:
                drops += 1
                continue
            if fault is BlockFault.BITFLIP:
                corruptions += 1
                continue
            return TransmissionOutcome(
                attempts=attempt + 1,
                drops=drops,
                corruptions=corruptions,
                duplicates=int(fault is BlockFault.DUPLICATE),
                delivered=True,
            )
        return TransmissionOutcome(
            attempts=cfg.max_retries + 1,
            drops=drops,
            corruptions=corruptions,
            duplicates=0,
            delivered=False,
        )
