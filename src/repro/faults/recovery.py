"""Fault recovery: retransmit timing and checkpoint/restart.

**Retransmit with exponential backoff.**  A lost (or checksum-failed)
block is detected by timeout: the receiver waits ``timeout_factor``
times the block's nominal transfer time, then requests a retransmit;
each further failure doubles the wait (``backoff_factor``).  The total
simulated-time cost of delivering a block that failed ``f`` times is

    cost(f) = (attempts) * (T_l + words * T_w)           (wire time)
            + sum_{k<f} timeout * backoff_factor**k       (stalls)

which :func:`retransmit_penalty` computes for the BSP simulator.

**Checkpoint/restart.**  :class:`CheckpointManager` snapshots the time
stepper's complete state (``u``, ``u_prev``, ``step_index``, ``dt``) to
CRC-protected ``.npz`` files so a killed run can resume from the latest
valid checkpoint and reproduce the uninterrupted run exactly (the
central-difference recurrence is fully determined by that state).
Corrupt or truncated checkpoint files are detected and skipped, never
trusted.
"""

from __future__ import annotations

import os
import re
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.faults.errors import CheckpointCompatibilityError, CheckpointError
from repro.telemetry.registry import count

PathLike = Union[str, os.PathLike]

_CKPT_PATTERN = re.compile(r"^ckpt-(\d{9})\.npz$")


def retransmit_penalty(
    base_cost: float,
    failures: int,
    timeout_factor: float = 4.0,
    backoff_factor: float = 2.0,
    jitters: Optional[Sequence[float]] = None,
) -> float:
    """Extra simulated seconds caused by ``failures`` failed attempts.

    ``base_cost`` is the block's nominal transfer time
    ``T_l + words * T_w``; the timeout before each retransmit starts at
    ``timeout_factor * base_cost`` and grows by ``backoff_factor`` per
    retry.  The successful attempt's own wire time is *not* included —
    callers already account one nominal transfer.

    ``jitters``, when given, scales the k-th stall by ``jitters[k]`` —
    the deterministic seeded factors from
    :meth:`~repro.faults.injector.FaultInjector.backoff_jitter`, which
    desynchronize concurrent retries without sacrificing
    reproducibility.  ``None`` keeps the historical un-jittered stalls
    bit for bit.
    """
    if failures <= 0:
        return 0.0
    timeout = timeout_factor * base_cost
    if jitters is not None:
        if len(jitters) < failures:
            raise ValueError(
                f"need one jitter factor per failure ({failures}), "
                f"got {len(jitters)}"
            )
        stalls = sum(
            timeout * backoff_factor**k * jitters[k] for k in range(failures)
        )
    elif backoff_factor == 1.0:
        stalls = failures * timeout
    else:
        stalls = timeout * (backoff_factor**failures - 1.0) / (backoff_factor - 1.0)
    # Each failed attempt also occupied the wire for its nominal time.
    return stalls + failures * base_cost


@dataclass(frozen=True)
class Checkpoint:
    """One recovered snapshot of a time-stepper run.

    ``num_pes`` and ``ownership_hash`` describe the data distribution
    active when the snapshot was taken (see
    :attr:`repro.smvp.distribution.DataDistribution.ownership_hash`);
    they are ``None`` for checkpoints written without one (sequential
    runs, or files from before the header existed).
    """

    step_index: int
    dt: float
    u: np.ndarray
    u_prev: np.ndarray
    num_pes: Optional[int] = None
    ownership_hash: Optional[int] = None

    def matches(self, distribution) -> bool:
        """Whether this snapshot was taken under ``distribution``.

        True when the checkpoint carries no distribution header (there
        is nothing to contradict) or when both the PE count and the
        row-ownership hash agree.
        """
        if self.num_pes is None or self.ownership_hash is None:
            return True
        return (
            self.num_pes == distribution.num_parts
            and self.ownership_hash == distribution.ownership_hash
        )

    def restore(self, stepper, distribution=None) -> None:
        """Load this snapshot into an :class:`ExplicitTimeStepper`.

        The stepper must have been constructed with the same problem
        (state size and ``dt``); mismatches raise
        :class:`CheckpointError` rather than silently resuming a
        different simulation.  Passing the
        :class:`~repro.smvp.distribution.DataDistribution` the caller
        is about to resume on additionally validates the checkpoint's
        distribution header — a snapshot from a different PE count or
        row ownership raises :class:`CheckpointCompatibilityError`
        instead of silently mis-splicing state across layouts.
        """
        if distribution is not None and not self.matches(distribution):
            raise CheckpointCompatibilityError(
                f"checkpoint at step {self.step_index} was taken on "
                f"{self.num_pes} PEs (ownership hash "
                f"{self.ownership_hash:#x}), but the active distribution "
                f"has {distribution.num_parts} PEs (hash "
                f"{distribution.ownership_hash:#x}); splice the state "
                "through the resilience layer instead of restoring"
            )
        if stepper.u.shape != self.u.shape:
            raise CheckpointError(
                f"checkpoint state has {self.u.shape[0]} dofs, "
                f"stepper has {stepper.u.shape[0]}"
            )
        if abs(stepper.dt - self.dt) > 1e-15 * max(1.0, abs(self.dt)):
            raise CheckpointError(
                f"checkpoint dt={self.dt!r} does not match stepper "
                f"dt={stepper.dt!r}"
            )
        stepper.u = self.u.copy()
        stepper.u_prev = self.u_prev.copy()
        stepper.step_index = self.step_index


class CheckpointManager:
    """Periodic CRC-protected snapshots of a time-stepper run.

    Parameters
    ----------
    directory:
        Where checkpoint files live (created if missing).
    interval:
        Snapshot every this many steps (:meth:`maybe_save`).
    keep:
        Retain at most this many most-recent checkpoints (0 = all).
    """

    def __init__(
        self, directory: PathLike, interval: int = 100, keep: int = 3
    ) -> None:
        if interval < 1:
            raise ValueError("interval must be at least 1")
        if keep < 0:
            raise ValueError("keep must be non-negative")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.interval = int(interval)
        self.keep = int(keep)

    def _path(self, step_index: int) -> Path:
        return self.directory / f"ckpt-{step_index:09d}.npz"

    def steps(self) -> List[int]:
        """Step indices with a checkpoint file on disk, ascending."""
        out = []
        for entry in self.directory.iterdir():
            match = _CKPT_PATTERN.match(entry.name)
            if match:
                out.append(int(match.group(1)))
        return sorted(out)

    def save(self, stepper, distribution=None) -> Path:
        """Snapshot the stepper's state now (atomic write + CRC).

        When the run is distributed, pass the active
        :class:`~repro.smvp.distribution.DataDistribution`: the file
        then carries the PE count and row-ownership hash, and a later
        restore onto a *different* distribution fails with a typed
        error instead of silently mis-splicing.
        """
        state = np.concatenate([stepper.u, stepper.u_prev])
        crc = zlib.crc32(np.ascontiguousarray(state).tobytes())
        path = self._path(stepper.step_index)
        tmp = path.with_suffix(path.suffix + ".tmp")
        fields = {}
        if distribution is not None:
            fields["num_pes"] = np.int64(distribution.num_parts)
            fields["ownership_hash"] = np.uint64(
                distribution.ownership_hash
            )
        with open(tmp, "wb") as f:
            np.savez_compressed(
                f,
                u=stepper.u,
                u_prev=stepper.u_prev,
                step_index=np.int64(stepper.step_index),
                dt=np.float64(stepper.dt),
                crc=np.uint64(crc),
                **fields,
            )
        os.replace(tmp, path)
        self._prune()
        count("repro_checkpoint_saves_total")
        return path

    def maybe_save(self, stepper, distribution=None) -> Optional[Path]:
        """Snapshot if the stepper just crossed the interval boundary."""
        if stepper.step_index % self.interval == 0:
            return self.save(stepper, distribution=distribution)
        return None

    def load(self, step_index: int) -> Checkpoint:
        """Load and verify one checkpoint; raises :class:`CheckpointError`."""
        path = self._path(step_index)
        try:
            with np.load(path) as data:
                required = {"u", "u_prev", "step_index", "dt", "crc"}
                if not required.issubset(data.files):
                    raise CheckpointError(
                        f"{path} is missing fields "
                        f"{sorted(required - set(data.files))}"
                    )
                u = data["u"]
                u_prev = data["u_prev"]
                stored = Checkpoint(
                    step_index=int(data["step_index"]),
                    dt=float(data["dt"]),
                    u=u,
                    u_prev=u_prev,
                    num_pes=(
                        int(data["num_pes"]) if "num_pes" in data.files else None
                    ),
                    ownership_hash=(
                        int(data["ownership_hash"])
                        if "ownership_hash" in data.files
                        else None
                    ),
                )
                crc = zlib.crc32(
                    np.ascontiguousarray(
                        np.concatenate([u, u_prev])
                    ).tobytes()
                )
                if crc != int(data["crc"]):
                    raise CheckpointError(f"{path} failed its CRC check")
        except CheckpointError:
            count("repro_checkpoint_load_errors_total")
            raise
        except Exception as exc:  # zipfile/OSError/ValueError zoo
            count("repro_checkpoint_load_errors_total")
            raise CheckpointError(f"{path} is unreadable: {exc}") from exc
        count("repro_checkpoint_loads_total")
        return stored

    def latest(self) -> Optional[Checkpoint]:
        """The newest *valid* checkpoint, or ``None``.

        Corrupt files are skipped (graceful degradation): a crash while
        writing the last snapshot must not make every older one
        unreachable.
        """
        for step_index in reversed(self.steps()):
            try:
                return self.load(step_index)
            except CheckpointError:
                continue
        return None

    def _prune(self) -> None:
        if self.keep == 0:
            return
        steps = self.steps()
        for step_index in steps[: -self.keep]:
            try:
                self._path(step_index).unlink()
            except OSError:
                pass
