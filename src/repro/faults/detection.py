"""Fault detection: checksums, numerical guards, residual checks.

Three layers of defense, cheapest first:

1. **Per-block checksums** — every exchange payload carries a CRC-32 of
   its bytes; the receiver recomputes it and treats a mismatch like a
   lost block (discard + retransmit).  Catches in-flight corruption.
2. **NaN/Inf guards** — the time stepper can verify each new state is
   finite, turning a silent numerical blow-up (or an undetected corrupt
   exchange) into an immediate, typed error at the step it happened.
3. **Residual verification** — after a distributed SMVP, compare
   against the global sequential product; the end-to-end check that the
   detection/recovery layers actually preserved the numerics.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.faults.errors import NumericalFaultError


def block_checksum(payload: np.ndarray) -> int:
    """CRC-32 of an exchange buffer's bytes (order-sensitive)."""
    return zlib.crc32(np.ascontiguousarray(payload).tobytes())


def verify_block(payload: np.ndarray, checksum: int) -> bool:
    """Whether a received payload matches its transmitted checksum."""
    return block_checksum(payload) == checksum


@dataclass
class FaultStats:
    """Tally of injected faults and the detections/recoveries they drew.

    ``injected_*`` counts what the injector did; ``detected_*`` counts
    what the receiver noticed.  For the subsystem to be working, every
    injected drop must show up as a detected timeout, every injected
    bit-flip as a detected checksum mismatch, and every duplicate must
    be ignored exactly once — :meth:`fully_recovered` asserts that.
    """

    injected_drops: int = 0
    injected_corruptions: int = 0
    injected_duplicates: int = 0
    detected_missing: int = 0
    detected_corrupt: int = 0
    duplicates_ignored: int = 0
    retransmits: int = 0
    words_retransmitted: int = 0
    straggler_events: int = 0
    pe_failures: int = 0
    #: Blocks routed over the verified slow path because one endpoint's
    #: links are circuit-broken (see the resilience supervisor's
    #: quarantine escalation); they bypass injection entirely.
    quarantined_blocks: int = 0
    #: Silent data corruptions: bit-flips injected into local memory or
    #: compute (x, y, or K) — invisible to the wire CRC by definition.
    injected_sdc: int = 0
    #: SDC occurrences caught by an ABFT checksum / input CRC check.
    detected_sdc: int = 0
    #: Inline per-PE superstep recomputes performed to heal an SDC.
    recomputed_sdc: int = 0
    #: Persistent matrix-corruption records scrubbed from the
    #: authoritative local block after detection.
    repaired_blocks: int = 0
    #: Injected SDCs that no check caught before the superstep
    #: committed (only possible with ABFT disabled).
    escaped_sdc: int = 0

    @property
    def any_injected(self) -> bool:
        return bool(
            self.injected_drops
            or self.injected_corruptions
            or self.injected_duplicates
            or self.straggler_events
            or self.pe_failures
            or self.injected_sdc
        )

    @property
    def sdc_contained(self) -> bool:
        """No silent corruption committed undetected."""
        return self.escaped_sdc == 0

    def fully_recovered(self) -> bool:
        """Every injected communication fault was detected and handled."""
        return (
            self.detected_missing == self.injected_drops
            and self.detected_corrupt == self.injected_corruptions
            and self.duplicates_ignored == self.injected_duplicates
            and self.retransmits
            == self.injected_drops + self.injected_corruptions
        )

    def merge(self, other: "FaultStats") -> "FaultStats":
        """Element-wise sum (aggregating over supersteps)."""
        return FaultStats(
            **{
                name: getattr(self, name) + getattr(other, name)
                for name in self.__dataclass_fields__
            }
        )


def check_finite(
    state: np.ndarray,
    context: str = "state",
    pe: "int | None" = None,
    step: "int | None" = None,
    phase: "str | None" = None,
) -> None:
    """Raise :class:`NumericalFaultError` if the array has NaN/Inf.

    ``pe``/``step``/``phase`` attach blame context to the error payload
    (see :meth:`NumericalFaultError.blame`) so supervisor logs and
    chaos reports can print actionable lines.
    """
    if not np.all(np.isfinite(state)):
        bad = int(np.count_nonzero(~np.isfinite(state)))
        err = NumericalFaultError(
            f"{context} contains {bad} non-finite value(s) "
            f"out of {state.size}",
            pe=pe,
            step=step,
            phase=phase,
        )
        raise err


def residual_relative_error(
    computed: np.ndarray, reference: np.ndarray
) -> float:
    """Max relative error of ``computed`` against ``reference``."""
    reference = np.asarray(reference, dtype=np.float64)
    scale = float(np.abs(reference).max()) or 1.0
    return float(np.abs(np.asarray(computed) - reference).max() / scale)


def verify_residual(
    computed: np.ndarray,
    reference: np.ndarray,
    tol: float = 1e-9,
    context: str = "SMVP",
    pe: "int | None" = None,
    step: "int | None" = None,
    phase: "str | None" = None,
) -> float:
    """End-to-end residual check; raises on excessive error.

    Returns the relative error so callers can log it.  Optional
    ``pe``/``step``/``phase`` ride on the error payload as the blamed
    context.
    """
    err = residual_relative_error(computed, reference)
    if not err <= tol:  # NaN-safe: NaN comparisons are False
        raise NumericalFaultError(
            f"{context} residual {err:.3e} exceeds tolerance {tol:.1e}",
            pe=pe,
            step=step,
            phase=phase,
        )
    return err
