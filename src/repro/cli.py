"""Command-line entry points.

``repro-tables``
    Regenerate the paper's tables and figures (all, or a selection).

``repro-quake``
    Run a small end-to-end earthquake simulation (mesh, assemble,
    distributed SMVP per time step) and print a summary.

``repro-mesh``
    Build a named mesh instance, report its statistics, optionally
    export it.

``repro-measure``
    Run the Spark98-style kernel suite and print T_f per kernel.

``repro-trace``
    Run time steps through the distributed executor with per-superstep
    instrumentation attached; print the per-step phase table (or JSON).

``repro-faults``
    Sweep fault rates through the BSP simulator and the distributed
    executor's recovery protocol; print the reliability tables.

``repro-lint``
    Determinism / units / BSP-invariant static analysis over the
    source tree (and golden ``*schedule*.json`` files).  Exits 1 on
    findings; gates CI.

``repro-san``
    Dynamic BSP race detection: run supersteps with tracked per-PE
    arrays and check every access against the ownership map and
    exchange schedule (exact (pe, step, phase, dof) blame).  With
    ``--racy MODE``, runs the seeded race-injection fixture and
    verifies the detector catches every injected race; gates CI's
    race job.

``repro-metrics``
    The observability surface: run an instrumented workload and dump
    the metrics registry (``snapshot``), export a Chrome-trace/Perfetto
    timeline (``timeline``), or compare measured phase times against
    the Eq. (1)/(2) model (``drift``).

``repro-chaos``
    Self-healing exercise: run under the superstep supervisor with a
    seeded schedule of permanent PE failures, evict the dead PEs
    online, and prove survivor equivalence (a fresh P-1 run from the
    spliced state matches bit for bit).  Exits 1 when the proof fails;
    gates CI's chaos job.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional


def _run_traced_workload(
    instance: str,
    pes: int,
    steps: int,
    kernel: str,
    backend: str,
    fault_rate: float,
    seed: int,
    rhs: int = 1,
    profile: bool = False,
):
    """Run a short traced time-stepped simulation.

    The shared workload behind ``repro-trace`` and ``repro-metrics``:
    build the instance, assemble, time-step through the distributed
    executor with a :class:`~repro.smvp.trace.TraceLog` attached.
    Returns ``(log, flops_per_pe, schedule)``.
    """
    import numpy as np

    from repro.faults import FaultConfig, FaultInjector
    from repro.fem import (
        ExplicitTimeStepper,
        assemble_lumped_mass,
        assemble_stiffness,
        materials_from_model,
        stable_timestep,
    )
    from repro.mesh.instances import get_instance
    from repro.partition.base import partition_mesh
    from repro.smvp.executor import DistributedSMVP
    from repro.smvp.trace import TraceLog

    inst = get_instance(instance)
    mesh, _ = inst.build()
    materials = materials_from_model(mesh, inst.model())
    stiffness = assemble_stiffness(mesh, materials)
    mass = assemble_lumped_mass(mesh, materials)
    dt = stable_timestep(mesh, materials)
    partition = partition_mesh(mesh, pes)
    injector = None
    if fault_rate > 0:
        injector = FaultInjector(
            FaultConfig(
                seed=seed,
                drop_rate=fault_rate,
                bitflip_rate=fault_rate,
                duplicate_rate=fault_rate,
            )
        )
    smvp = DistributedSMVP(
        mesh,
        partition,
        materials,
        kernel=kernel,
        backend=backend,
        injector=injector,
        profile=profile,
    )
    log = TraceLog()
    stepper = ExplicitTimeStepper(stiffness, mass, dt, smvp=smvp, rhs=rhs)
    force = np.zeros(3 * mesh.num_nodes)
    force[: min(300, force.size)] = 1e9
    try:
        stepper.run(steps, force_at=lambda t: force, trace_sink=log)
        flops = smvp.flops_per_pe()
        schedule = smvp.schedule
    finally:
        smvp.close()
    return log, flops, schedule


def main_tables(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-tables``."""
    from repro.tables.report import TABLES, generate

    parser = argparse.ArgumentParser(
        prog="repro-tables",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "tables",
        nargs="*",
        help=f"tables to generate (default all): {', '.join(TABLES)}",
    )
    args = parser.parse_args(argv)
    names = args.tables or None
    try:
        sys.stdout.write(generate(names))
    except ValueError as exc:
        parser.error(str(exc))
    return 0


def main_quake(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-quake``: a miniature Quake simulation."""
    import numpy as np

    from repro.fem import (
        ExplicitTimeStepper,
        PointSource,
        RickerWavelet,
        assemble_lumped_mass,
        assemble_stiffness,
        materials_from_model,
        stable_timestep,
    )
    from repro.mesh.instances import get_instance, instance_names
    from repro.partition.base import partition_mesh
    from repro.smvp.executor import DistributedSMVP

    parser = argparse.ArgumentParser(
        prog="repro-quake",
        description="Run a small earthquake ground-motion simulation.",
    )
    parser.add_argument(
        "--instance", default="demo", choices=list(instance_names())
    )
    parser.add_argument("--pes", type=int, default=8, help="number of PEs")
    parser.add_argument("--steps", type=int, default=100)
    parser.add_argument(
        "--sequential",
        action="store_true",
        help="use the sequential SMVP instead of the distributed executor",
    )
    parser.add_argument(
        "--backend",
        default="serial",
        help="execution backend for the compute phase "
        "(serial / threaded / shared-memory)",
    )
    parser.add_argument(
        "--kernel",
        default="csr",
        help="local SMVP kernel for the distributed executor",
    )
    parser.add_argument(
        "--rhs",
        type=int,
        default=1,
        metavar="R",
        help="number of right-hand-side scenarios integrated in lock "
        "step (block SMVP; 1 = the historical vector path)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write a metrics snapshot after the run "
        "(.json = JSON, anything else = Prometheus text)",
    )
    parser.add_argument(
        "--timeline-out",
        default=None,
        metavar="PATH",
        help="write a Chrome-trace/Perfetto JSON timeline of the run",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="record per-PE spans and print a critical-path blame "
        "summary after the run",
    )
    args = parser.parse_args(argv)

    # Validate registry names up front: an unknown kernel/backend must
    # exit with the registered options, not a traceback from deep in
    # executor setup.
    from repro.smvp.backends import make_backend
    from repro.smvp.kernels import get_kernel

    try:
        get_kernel(args.kernel)
        make_backend(args.backend)
    except ValueError as exc:
        parser.error(str(exc))
    if args.rhs < 1:
        parser.error("--rhs must be >= 1")
    if args.timeline_out and args.sequential:
        parser.error(
            "--timeline-out needs the distributed executor; "
            "drop --sequential"
        )
    if args.profile and args.sequential:
        parser.error(
            "--profile needs the distributed executor; drop --sequential"
        )

    registry = None
    previous_registry = None
    if args.metrics_out or args.timeline_out:
        from repro.telemetry import MetricsRegistry, set_registry
        from repro.util.clock import now as _now

        registry = MetricsRegistry(clock=_now)
        previous_registry = set_registry(registry)
    try:
        inst = get_instance(args.instance)
        mesh, _ = inst.build()
        model = inst.model()
        materials = materials_from_model(mesh, model)
        stiffness = assemble_stiffness(mesh, materials)
        mass = assemble_lumped_mass(mesh, materials)
        dt = stable_timestep(mesh, materials)
        print(f"instance={args.instance} {mesh} dt={dt:.4f}s")

        smvp = None
        if not args.sequential:
            partition = partition_mesh(mesh, args.pes)
            smvp = DistributedSMVP(
                mesh,
                partition,
                materials,
                kernel=args.kernel,
                backend=args.backend,
                profile=args.profile,
            )
            print(
                f"distributed on {args.pes} PEs "
                f"(backend={smvp.backend_name}): "
                f"C_max={smvp.schedule.c_max} B_max={smvp.schedule.b_max}"
            )
        source = PointSource.at_point(
            mesh,
            (model.center_x, model.center_y, -4000.0),
            RickerWavelet(frequency=1.0 / inst.period, amplitude=1e12),
        )
        stepper = ExplicitTimeStepper(
            stiffness, mass, dt, damping_alpha=0.02, smvp=smvp,
            rhs=args.rhs,
        )
        log = None
        if args.timeline_out or args.profile:
            from repro.smvp.trace import TraceLog

            log = TraceLog()
        try:
            records, _ = stepper.run(
                args.steps,
                force_at=lambda t: source.force(t, mesh.num_nodes),
                trace_sink=log,
            )
        finally:
            if smvp is not None:
                smvp.close()
        peak = max(r.max_displacement for r in records)
        print(
            f"ran {args.steps} steps to t={stepper.time:.2f}s; "
            f"peak displacement {peak:.3e} m; "
            f"finite={np.isfinite(peak)}"
        )
        if args.profile:
            from repro.profile import build_report, render_report

            print()
            print(render_report(build_report(log)))
        if args.metrics_out:
            from repro.telemetry import write_metrics

            print(f"wrote metrics to {write_metrics(registry, args.metrics_out)}")
        if args.timeline_out:
            from repro.telemetry import render_chrome_trace

            Path(args.timeline_out).write_text(
                render_chrome_trace(log, registry)
            )
            print(f"wrote timeline to {args.timeline_out}")
    finally:
        if registry is not None:
            from repro.telemetry import set_registry

            set_registry(previous_registry)
    return 0


def main_mesh(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-mesh``: build, inspect, and export meshes."""
    from repro.mesh.instances import get_instance, instance_names
    from repro.mesh.io import save_mesh, save_mesh_text
    from repro.mesh.quality import quality_report

    parser = argparse.ArgumentParser(
        prog="repro-mesh",
        description="Generate a named instance mesh and report/export it.",
    )
    parser.add_argument(
        "--instance", default="sf10e", choices=list(instance_names())
    )
    parser.add_argument(
        "--out", default=None, help="write the mesh to this .npz path"
    )
    parser.add_argument(
        "--out-text", default=None, help="write the portable text format"
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="force a fresh build"
    )
    args = parser.parse_args(argv)

    inst = get_instance(args.instance)
    if not inst.is_enabled():
        parser.error(
            f"instance {args.instance} is gated; set {inst.gate}=1"
        )
    mesh, report = inst.build(use_cache=not args.no_cache)
    print(f"{args.instance}: {mesh}")
    if report is not None:
        print(
            f"  generated in {report.seconds_total:.1f}s "
            f"(octree {report.octree_leaves} leaves, depth "
            f"{report.octree_max_level}, method {report.method})"
        )
    print(f"  quality: {quality_report(mesh)}")
    if inst.paper_mesh_sizes:
        paper = inst.paper_mesh_sizes
        print(
            f"  paper ({inst.paper_name}): nodes={paper['nodes']:,} "
            f"elements={paper['elements']:,} edges={paper['edges']:,}"
        )
    if args.out:
        save_mesh(mesh, args.out)
        print(f"  wrote {args.out}")
    if args.out_text:
        save_mesh_text(mesh, args.out_text)
        print(f"  wrote {args.out_text}")
    return 0


def main_faults(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-faults``: the reliability sweep."""
    from repro.mesh.instances import INSTANCES
    from repro.model.machine import MACHINES
    from repro.tables.reliability import (
        DEFAULT_INSTANCES,
        DEFAULT_RATES,
        table_fault_recovery,
        table_reliability,
    )

    parser = argparse.ArgumentParser(
        prog="repro-faults",
        description=(
            "Sweep fault rates (stragglers, dropped/corrupt/duplicated "
            "blocks, transient PE failures) and report efficiency/runtime "
            "degradation plus executor-level detection and recovery."
        ),
    )
    parser.add_argument(
        "--instances",
        nargs="*",
        default=list(DEFAULT_INSTANCES),
        help="instances to sweep (default: sf10e sf5e)",
    )
    parser.add_argument("--pes", type=int, default=32, help="number of PEs")
    parser.add_argument(
        "--rates",
        type=float,
        nargs="*",
        default=list(DEFAULT_RATES),
        help="fault rates to sweep (0 = the paper's perfect machine)",
    )
    parser.add_argument(
        "--steps",
        type=int,
        default=20,
        help="supersteps sampled per cell (extrapolated to 6000)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--machine",
        default="t3e",
        choices=sorted(MACHINES),
        help="machine preset (needs T_l/T_w, e.g. t3e)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run: demo instance, 8 PEs, 3 supersteps",
    )
    args = parser.parse_args(argv)

    machine = MACHINES[args.machine]
    try:
        machine.require_comm("the reliability sweep")
    except ValueError as exc:
        parser.error(str(exc))

    if args.smoke:
        instances, pes, rates, steps = ["demo"], 8, [0.0, 0.05], 3
    else:
        instances, pes, rates, steps = (
            args.instances,
            args.pes,
            args.rates,
            args.steps,
        )
    unknown = [n for n in instances if n not in INSTANCES]
    if unknown:
        parser.error(f"unknown instances {unknown}")
    bad_rates = [r for r in rates if not 0.0 <= r <= 0.5]
    if bad_rates:
        parser.error(
            f"rates must be in [0, 0.5] (uniform fault mix), got {bad_rates}"
        )

    print(
        table_reliability(
            instances=instances,
            num_parts=pes,
            rates=rates,
            machine=machine,
            num_steps=steps,
            seed=args.seed,
        )
    )
    print()
    recovery_rate = max([r for r in rates if r > 0], default=0.05)
    print(
        table_fault_recovery(
            instance="demo",
            num_parts=min(pes, 8),
            rate=min(recovery_rate, 0.1),
            num_exchanges=2 if args.smoke else 5,
            seed=args.seed,
        )
    )
    return 0


def main_lint(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-lint``: the static-analysis gate."""
    from repro.analysis import (
        ALL_RULES,
        lint_paths,
        render_json,
        render_text,
    )

    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Static analysis for reproducibility: determinism lints "
            "(unseeded RNG, wall-clock reads, set-order iteration), "
            "dimensional consistency of the Eq. (1)/(2) model code, and "
            "BSP exchange-schedule invariants (pairwise symmetry, "
            "deadlock-freedom, shared-node coverage) over golden "
            "*schedule*.json files."
        ),
        epilog=(
            "Suppress an intentional finding with an inline "
            "`# repro-lint: ignore[rule]` pragma. Exit status: 0 clean, "
            "1 findings, 2 usage error."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable JSON report instead of text",
    )
    parser.add_argument(
        "--rules",
        nargs="*",
        default=None,
        metavar="RULE",
        help="restrict to these rules (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--pragma-report",
        action="store_true",
        help=(
            "also print the pragma budget: every "
            "`# repro-lint: ignore` suppression under the target "
            "paths, tallied by rule and file"
        ),
    )
    parser.add_argument(
        "--pragma-budget",
        type=int,
        default=None,
        metavar="N",
        help=(
            "fail (exit 1) when the pragma count exceeds N "
            "(implies --pragma-report)"
        ),
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        from repro.analysis.core import _ensure_rules_loaded

        _ensure_rules_loaded()
        for name, rule in ALL_RULES.items():
            print(f"{name:<22} {rule.description}")
        return 0
    try:
        findings = lint_paths(args.paths, rules=args.rules)
    except (FileNotFoundError, ValueError) as exc:
        parser.error(str(exc))
    over_budget = False
    if args.pragma_report or args.pragma_budget is not None:
        from repro.analysis.core import pragma_report, render_pragma_report

        report = pragma_report(args.paths)
        sys.stdout.write(render_pragma_report(report))
        if (
            args.pragma_budget is not None
            and report["total"] > args.pragma_budget
        ):
            print(
                f"pragma budget exceeded: {report['total']} > "
                f"{args.pragma_budget}"
            )
            over_budget = True
    if args.json:
        print(render_json(findings))
    else:
        sys.stdout.write(render_text(findings))
    return 1 if findings or over_budget else 0


def main_san(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-san``: the dynamic BSP race detector.

    Runs a short power-iteration workload through the distributed
    executor with the superstep sanitizer recording every per-(PE,
    superstep, phase) read/write dof set and checking it against the
    ownership map and exchange schedule.  ``--racy MODE`` swaps in the
    seeded race-injection fixture and additionally verifies the
    detector blamed every injected race exactly.

    Exit status: 0 clean, 1 findings reported, 2 usage error, 4 the
    racy fixture injected a race the sanitizer missed (detector
    regression — this is what the CI race job guards).
    """
    import numpy as np

    from repro.fem import materials_from_model
    from repro.mesh.instances import get_instance, instance_names
    from repro.partition.base import partition_mesh
    from repro.smvp.backends import backend_names
    from repro.smvp.executor import DistributedSMVP
    from repro.smvp.kernels import kernel_names
    from repro.smvp.racy import RACE_MODES, make_racy, verify_detection

    parser = argparse.ArgumentParser(
        prog="repro-san",
        description=(
            "Dynamic BSP race detection: run supersteps with tracked "
            "per-PE arrays and check every recorded access against the "
            "ownership map and the exchange schedule's happens-before "
            "order. Reports racy write/write pairs, non-owner writes, "
            "and stale-ghost reads with exact (pe, step, phase, dof) "
            "blame."
        ),
        epilog=(
            "Exit status: 0 clean, 1 findings, 2 usage error, 4 an "
            "injected race went undetected (--racy only)."
        ),
    )
    parser.add_argument(
        "--instance",
        default="sf10e",
        choices=list(instance_names()),
        help="mesh instance (default: sf10e)",
    )
    parser.add_argument("--pes", type=int, default=8, help="number of PEs")
    parser.add_argument("--steps", type=int, default=5)
    parser.add_argument(
        "--kernel", default="csr", choices=list(kernel_names())
    )
    parser.add_argument(
        "--backend",
        default="threaded",
        choices=list(backend_names()),
        help="execution backend (default: threaded)",
    )
    parser.add_argument(
        "--racy",
        default=None,
        choices=sorted(RACE_MODES),
        metavar="MODE",
        help=(
            "run the seeded race-injection fixture instead of the "
            f"clean engine (modes: {', '.join(sorted(RACE_MODES))})"
        ),
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable JSON report instead of text",
    )
    args = parser.parse_args(argv)

    inst = get_instance(args.instance)
    mesh, _ = inst.build()
    materials = materials_from_model(mesh, inst.model())
    partition = partition_mesh(mesh, args.pes)

    if args.racy is not None:
        smvp = make_racy(
            mesh,
            partition,
            materials,
            args.racy,
            seed=args.seed,
            kernel=args.kernel,
            backend=args.backend,
            strict=False,
        )
    else:
        smvp = DistributedSMVP(
            mesh,
            partition,
            materials,
            kernel=args.kernel,
            backend=args.backend,
            sanitizer=True,
        )
        smvp.sanitizer.strict = False

    rng = np.random.default_rng(args.seed)
    x = rng.standard_normal(3 * mesh.num_nodes)
    try:
        for _step in range(args.steps):
            y = smvp.multiply(x)
            x = y / np.linalg.norm(y)  # power iteration keeps it bounded
    finally:
        smvp.close()

    san = smvp.sanitizer
    missed = []
    if args.racy is not None:
        missed = verify_detection(smvp.injected, san.findings)

    if args.json:
        import json as _json
        from dataclasses import asdict

        print(
            _json.dumps(
                {
                    "version": 1,
                    "summary": san.summary(),
                    "findings": [asdict(f) for f in san.findings],
                    "injected": (
                        [asdict(r) for r in smvp.injected]
                        if args.racy is not None
                        else []
                    ),
                    "missed": [asdict(r) for r in missed],
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        sys.stdout.write(san.render_report())
        if args.racy is not None:
            total = len(smvp.injected)
            print(
                f"repro-san --racy {args.racy}: detected "
                f"{total - len(missed)}/{total} injected race(s)"
            )
            for race in missed:
                print(f"  MISSED: {race}")
    if missed:
        return 4
    return 1 if san.findings else 0


def main_measure(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-measure``: the Spark98-style suite."""
    from repro.smvp.backends import backend_names
    from repro.smvp.spark98 import SUITE, run_suite

    parser = argparse.ArgumentParser(
        prog="repro-measure",
        description="Measure T_f for the Spark98-style kernel suite.",
    )
    parser.add_argument("--instance", default="sf10e")
    parser.add_argument("--pes", type=int, default=8)
    parser.add_argument("--repetitions", type=int, default=3)
    parser.add_argument(
        "--kernels", nargs="*", default=None, help=f"subset of {SUITE}"
    )
    parser.add_argument(
        "--backend",
        default="serial",
        choices=backend_names(),
        help="execution backend for the partitioned kernels (lmv/mmv)",
    )
    parser.add_argument(
        "--rhs",
        type=int,
        default=1,
        metavar="R",
        help="right-hand-side columns per SMVP (block kernels; flops "
        "count every column so T_f stays per-flop-per-column)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write a metrics snapshot after the suite "
        "(.json = JSON, anything else = Prometheus text)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="attach the critical-path profiler to the mmv kernel's "
        "executor and print its blame summary after the table",
    )
    args = parser.parse_args(argv)
    kernels = tuple(args.kernels) if args.kernels else SUITE
    unknown = [k for k in kernels if k not in SUITE]
    if unknown:
        parser.error(
            f"unknown kernels {unknown}; registered: {list(SUITE)}"
        )
    if args.rhs < 1:
        parser.error("--rhs must be >= 1")
    registry = None
    previous_registry = None
    if args.metrics_out:
        from repro.telemetry import MetricsRegistry, set_registry

        registry = MetricsRegistry()
        previous_registry = set_registry(registry)
    trace_log = None
    if args.profile:
        from repro.smvp.trace import TraceLog

        trace_log = TraceLog()
    try:
        results = run_suite(
            instance=args.instance,
            num_parts=args.pes,
            repetitions=args.repetitions,
            kernels=kernels,
            backend=args.backend,
            rhs=args.rhs,
            trace_sink=trace_log,
            profile=args.profile,
        )
    finally:
        if registry is not None:
            from repro.telemetry import set_registry

            set_registry(previous_registry)
    if args.metrics_out:
        from repro.telemetry import write_metrics

        print(f"wrote metrics to {write_metrics(registry, args.metrics_out)}")
    if args.rhs > 1:
        print(f"rhs={args.rhs} (block SMVP; flops count every column)")
    print(
        f"{'kernel':<8} {'p':>4} {'backend':<13} {'flops':>12} "
        f"{'s/SMVP':>12} {'T_f ns':>9} {'MFLOPS':>8}"
    )
    for name, run in results.items():
        print(
            f"{name:<8} {run.num_parts:>4} {run.backend:<13} {run.flops:>12,} "
            f"{run.seconds_per_smvp:>12.6f} {run.tf_ns:>9.2f} "
            f"{run.mflops:>8.0f}"
        )
    if trace_log is not None:
        from repro.profile import build_report, render_report

        if any(
            getattr(t, "pe_spans", None) is not None
            for t in trace_log.traces
        ):
            print()
            print(render_report(build_report(trace_log)))
        else:
            print(
                "\n--profile: no profiled supersteps (include the mmv "
                "kernel to trace the distributed executor)"
            )
    return 0


def main_trace(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-trace``: per-superstep instrumentation.

    Runs a short time-stepped simulation with the distributed executor
    and a :class:`~repro.smvp.trace.TraceLog` attached, then prints the
    per-step phase table (wall time per phase, per-PE traffic, faults)
    or the JSON report.
    """
    from repro.mesh.instances import instance_names
    from repro.smvp.backends import backend_names
    from repro.smvp.kernels import kernel_names

    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description=(
            "Trace the superstep engine: run time steps through the "
            "distributed executor and print per-phase wall times, "
            "per-PE traffic, and fault statistics for every superstep."
        ),
    )
    parser.add_argument(
        "--instance", default="demo", choices=list(instance_names())
    )
    parser.add_argument("--pes", type=int, default=8, help="number of PEs")
    parser.add_argument("--steps", type=int, default=10)
    parser.add_argument(
        "--kernel", default="csr", choices=kernel_names()
    )
    parser.add_argument(
        "--backend", default="serial", choices=backend_names()
    )
    parser.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="uniform drop/bitflip/duplicate rate through the exchange "
        "middleware (0 = clean path)",
    )
    parser.add_argument(
        "--rhs",
        type=int,
        default=1,
        metavar="R",
        help="right-hand-side columns per superstep (block SMVP; "
        "1 = the historical vector path)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable JSON report instead of the table",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write a metrics snapshot after the run "
        "(.json = JSON, anything else = Prometheus text)",
    )
    parser.add_argument(
        "--timeline-out",
        default=None,
        metavar="PATH",
        help="write a Chrome-trace/Perfetto JSON timeline of the run",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="record per-PE spans (critical-path profiler); adds a "
        "blame summary after the phase table and per-PE/wire tracks "
        "to --timeline-out",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.fault_rate <= 0.3:
        parser.error("--fault-rate must be in [0, 0.3]")
    if args.rhs < 1:
        parser.error("--rhs must be >= 1")

    registry = None
    previous_registry = None
    if args.metrics_out or args.timeline_out:
        from repro.telemetry import MetricsRegistry, set_registry
        from repro.util.clock import now as _now

        registry = MetricsRegistry(clock=_now)
        previous_registry = set_registry(registry)
    try:
        log, _flops, _schedule = _run_traced_workload(
            instance=args.instance,
            pes=args.pes,
            steps=args.steps,
            kernel=args.kernel,
            backend=args.backend,
            fault_rate=args.fault_rate,
            seed=args.seed,
            rhs=args.rhs,
            profile=args.profile,
        )
    finally:
        if registry is not None:
            from repro.telemetry import set_registry

            set_registry(previous_registry)
    if args.json:
        print(log.render_json())
    else:
        print(
            f"instance={args.instance} pes={args.pes} "
            f"kernel={args.kernel} backend={args.backend} "
            f"fault_rate={args.fault_rate} rhs={args.rhs}"
        )
        print(log.render_table())
        if args.profile:
            from repro.profile import build_report, render_report

            print()
            print(render_report(build_report(log)))
    if args.metrics_out:
        from repro.telemetry import write_metrics

        print(f"wrote metrics to {write_metrics(registry, args.metrics_out)}")
    if args.timeline_out:
        from repro.telemetry import render_chrome_trace

        Path(args.timeline_out).write_text(
            render_chrome_trace(log, registry)
        )
        print(f"wrote timeline to {args.timeline_out}")
    return 0


#: Absolute slack on the critical-path identity gate (seconds).  The
#: host windows tile [0, t_smvp] by construction, so the error is pure
#: float-addition roundoff — nanoseconds would already be a failure.
PROFILE_IDENTITY_TOL = 1e-9


def main_profile(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-profile``: the critical-path profiler.

    Default mode runs a profiled workload and prints the blame table
    (optionally next to the analytic prediction via ``--machine``),
    with the JSON snapshot / folded stacks / Chrome-trace timeline as
    side outputs.  ``--regress OLD NEW`` instead compares two saved
    snapshots with a noise-aware threshold and exits 1 on a slowdown.
    """
    from repro.mesh.instances import instance_names
    from repro.model.machine import MACHINES
    from repro.smvp.backends import backend_names
    from repro.smvp.kernels import kernel_names

    parser = argparse.ArgumentParser(
        prog="repro-profile",
        description=(
            "Critical-path profiler: record per-PE spans through the "
            "superstep engine, attribute wall time to compute / "
            "imbalance / latency / bandwidth / verify / recovery / "
            "overhead, and report stragglers, overlap efficiency, and "
            "the per-message wire fit."
        ),
    )
    parser.add_argument(
        "--instance", default="demo", choices=list(instance_names())
    )
    parser.add_argument("--pes", type=int, default=8, help="number of PEs")
    parser.add_argument("--steps", type=int, default=10)
    parser.add_argument(
        "--kernel", default="csr", choices=kernel_names()
    )
    parser.add_argument(
        "--backend", default="serial", choices=backend_names()
    )
    parser.add_argument(
        "--rhs",
        type=int,
        default=1,
        metavar="R",
        help="right-hand-side columns per superstep (block SMVP)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--machine",
        default=None,
        choices=sorted(MACHINES),
        help="also render the analytic per-bucket prediction for this "
        "machine next to the measured buckets",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write the JSON snapshot ('-' = stdout); feed two of "
        "these to --regress",
    )
    parser.add_argument(
        "--folded",
        default=None,
        metavar="PATH",
        help="write flamegraph folded stacks ('-' = stdout)",
    )
    parser.add_argument(
        "--timeline-out",
        default=None,
        metavar="PATH",
        help="write a Chrome-trace/Perfetto timeline with per-PE and "
        "wire-thread tracks",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) unless the critical-path identity "
        "|path - t_smvp| holds on every superstep",
    )
    parser.add_argument(
        "--regress",
        nargs=2,
        default=None,
        metavar=("OLD", "NEW"),
        help="compare two --json snapshots instead of running a "
        "workload; exit 1 on a slowdown beyond the noise-aware "
        "threshold",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        metavar="FRACTION",
        help="base relative-slowdown threshold for --regress "
        "(widened automatically on noisy baselines; default 0.10)",
    )
    args = parser.parse_args(argv)

    from repro.profile import (
        DEFAULT_REGRESS_THRESHOLD,
        build_report,
        compare_snapshots,
        load_snapshot,
        render_folded,
        render_report,
        render_snapshot,
    )

    if args.regress:
        old = load_snapshot(Path(args.regress[0]).read_text())
        new = load_snapshot(Path(args.regress[1]).read_text())
        base = (
            args.threshold
            if args.threshold is not None
            else DEFAULT_REGRESS_THRESHOLD
        )
        ok, lines = compare_snapshots(old, new, base_threshold=base)
        for line in lines:
            print(line)
        if not ok:
            print("PROFILE REGRESSION", file=sys.stderr)
            return 1
        print("no regression")
        return 0
    if args.rhs < 1:
        parser.error("--rhs must be >= 1")
    if args.threshold is not None:
        parser.error("--threshold only applies to --regress")
    if args.machine:
        try:
            MACHINES[args.machine].require_comm("the modeled critical path")
        except ValueError as exc:
            parser.error(str(exc))

    log, flops, schedule = _run_traced_workload(
        instance=args.instance,
        pes=args.pes,
        steps=args.steps,
        kernel=args.kernel,
        backend=args.backend,
        fault_rate=0.0,
        seed=args.seed,
        rhs=args.rhs,
        profile=True,
    )
    report = build_report(log)
    modeled = None
    if args.machine:
        from repro.simulate.bsp import modeled_critical_path

        per_step = modeled_critical_path(
            flops, schedule, MACHINES[args.machine], rhs=args.rhs
        )
        # The report totals over the run; scale the per-superstep
        # prediction to match.
        modeled = {k: v * report.steps for k, v in per_step.items()}
    print(render_report(report, modeled=modeled))
    meta = {
        "instance": args.instance,
        "pes": args.pes,
        "steps": args.steps,
        "kernel": args.kernel,
        "backend": args.backend,
        "rhs": args.rhs,
        "seed": args.seed,
    }
    if args.json:
        text = render_snapshot(report, meta) + "\n"
        if args.json == "-":
            sys.stdout.write(text)
        else:
            Path(args.json).write_text(text)
            print(f"wrote snapshot to {args.json}")
    if args.folded:
        text = render_folded(log)
        if args.folded == "-":
            sys.stdout.write(text)
        else:
            Path(args.folded).write_text(text)
            print(f"wrote folded stacks to {args.folded}")
    if args.timeline_out:
        from repro.telemetry import render_chrome_trace

        Path(args.timeline_out).write_text(render_chrome_trace(log))
        print(f"wrote timeline to {args.timeline_out}")
    if args.check:
        if report.identity_max_err > PROFILE_IDENTITY_TOL:
            print(
                f"PROFILE CHECK FAILURE: critical-path identity "
                f"max error {report.identity_max_err:.3e}s exceeds "
                f"{PROFILE_IDENTITY_TOL:.0e}s",
                file=sys.stderr,
            )
            return 1
        print(
            f"critical-path identity ok "
            f"(max error {report.identity_max_err:.3e}s over "
            f"{report.steps} supersteps)"
        )
    return 0


def main_metrics(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-metrics``: the observability surface.

    ``snapshot``
        Run an instrumented workload and dump the metrics registry
        (Prometheus text or JSON snapshot).
    ``timeline``
        Export a Chrome-trace/Perfetto JSON timeline — from a fresh
        instrumented run or from a saved ``repro-trace --json`` report.
    ``drift``
        Compare measured per-superstep phase times against the
        Eq. (1)/(2) predictions on a named machine; optionally fail
        (exit 1) when relative drift exceeds a threshold.
    """
    from repro.mesh.instances import instance_names
    from repro.model.machine import MACHINES
    from repro.smvp.backends import backend_names
    from repro.smvp.kernels import kernel_names

    parser = argparse.ArgumentParser(
        prog="repro-metrics",
        description=(
            "Observability for the reproduction pipeline: metrics "
            "snapshots, Perfetto timelines, and model-vs-measured "
            "drift monitoring."
        ),
    )
    sub = parser.add_subparsers(dest="command")

    def add_workload_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--instance", default="demo", choices=list(instance_names())
        )
        p.add_argument("--pes", type=int, default=8, help="number of PEs")
        p.add_argument("--steps", type=int, default=5)
        p.add_argument("--kernel", default="csr", choices=kernel_names())
        p.add_argument(
            "--backend", default="serial", choices=backend_names()
        )
        p.add_argument(
            "--fault-rate",
            type=float,
            default=0.0,
            help="uniform drop/bitflip/duplicate rate (0 = clean path)",
        )
        p.add_argument("--seed", type=int, default=0)

    p_snap = sub.add_parser(
        "snapshot",
        help="run an instrumented workload and dump the registry",
    )
    add_workload_args(p_snap)
    p_snap.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write instead of printing (.json = JSON snapshot, "
        "anything else = Prometheus text)",
    )
    p_snap.add_argument(
        "--json",
        action="store_true",
        help="print the JSON snapshot instead of Prometheus text",
    )

    p_tl = sub.add_parser(
        "timeline", help="export a Chrome-trace/Perfetto JSON timeline"
    )
    add_workload_args(p_tl)
    p_tl.add_argument(
        "--from-trace",
        default=None,
        metavar="PATH",
        help="convert a saved `repro-trace --json` report instead of "
        "running a workload",
    )
    p_tl.add_argument(
        "--out", default=None, metavar="PATH", help="write instead of printing"
    )

    p_drift = sub.add_parser(
        "drift",
        help="compare measured phase times against the Eq. (1)/(2) model",
    )
    add_workload_args(p_drift)
    p_drift.add_argument(
        "--source",
        default="simulate",
        choices=("simulate", "execute"),
        help="'simulate' runs the BSP simulator on the named machine "
        "(measured == modeled by construction when fault-free); "
        "'execute' runs the real executor and fits a host machine "
        "from the first supersteps",
    )
    p_drift.add_argument(
        "--machine",
        default="t3e",
        choices=sorted(MACHINES),
        help="machine preset for --source simulate (needs T_l/T_w)",
    )
    p_drift.add_argument(
        "--max-drift",
        type=float,
        default=None,
        metavar="FRACTION",
        help="fail (exit 1) when |relative drift| of T_comp or T_comm "
        "exceeds this fraction, or the beta bound is violated",
    )
    p_drift.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable JSON report instead of the table",
    )

    args = parser.parse_args(argv)
    if args.command is None:
        parser.error("choose a subcommand: snapshot, timeline, or drift")
    if not 0.0 <= args.fault_rate <= 0.3:
        parser.error("--fault-rate must be in [0, 0.3]")

    if args.command == "snapshot":
        return _metrics_snapshot(args)
    if args.command == "timeline":
        return _metrics_timeline(args)
    return _metrics_drift(args, parser)


def _metrics_snapshot(args) -> int:
    from repro.telemetry import (
        MetricsRegistry,
        render_prometheus,
        render_snapshot_json,
        use_registry,
        write_metrics,
    )
    from repro.util.clock import now

    registry = MetricsRegistry(clock=now)
    with use_registry(registry):
        log, _flops, _schedule = _run_traced_workload(
            instance=args.instance,
            pes=args.pes,
            steps=args.steps,
            kernel=args.kernel,
            backend=args.backend,
            fault_rate=args.fault_rate,
            seed=args.seed,
        )
        for trace in log.traces:
            registry.histogram(
                "repro_smvp_t_smvp_seconds",
                help_text="superstep wall time",
            ).observe(trace.t_smvp)
            registry.histogram(
                "repro_smvp_t_comm_seconds",
                help_text="communication-phase wall time",
            ).observe(trace.t_comm)
    if args.out:
        print(f"wrote metrics to {write_metrics(registry, args.out)}")
    elif args.json:
        sys.stdout.write(render_snapshot_json(registry))
    else:
        sys.stdout.write(render_prometheus(registry))
    return 0


def _metrics_timeline(args) -> int:
    from repro.telemetry import MetricsRegistry, render_chrome_trace, use_registry

    registry = None
    if args.from_trace:
        from repro.smvp.trace import TraceLog

        log = TraceLog.from_json(Path(args.from_trace).read_text())
    else:
        from repro.util.clock import now

        registry = MetricsRegistry(clock=now)
        with use_registry(registry):
            log, _flops, _schedule = _run_traced_workload(
                instance=args.instance,
                pes=args.pes,
                steps=args.steps,
                kernel=args.kernel,
                backend=args.backend,
                fault_rate=args.fault_rate,
                seed=args.seed,
            )
    text = render_chrome_trace(log, registry)
    if args.out:
        Path(args.out).write_text(text)
        print(f"wrote timeline to {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def _metrics_drift(args, parser: argparse.ArgumentParser) -> int:
    import json

    from repro.model.machine import MACHINES
    from repro.telemetry import DriftMonitor, DriftThresholds, fit_machine

    thresholds = None
    if args.max_drift is not None:
        if args.max_drift <= 0:
            parser.error("--max-drift must be positive")
        thresholds = DriftThresholds(
            max_comp_drift=args.max_drift,
            max_comm_drift=args.max_drift,
            max_efficiency_delta=1.0,  # gated by the time drifts above
        )

    if args.source == "simulate":
        from repro.mesh.instances import get_instance
        from repro.partition.base import partition_mesh
        from repro.simulate.bsp import BspSimulator
        from repro.smvp.distribution import DataDistribution
        from repro.smvp.schedule import CommSchedule

        machine = MACHINES[args.machine]
        try:
            machine.require_comm("drift monitoring")
        except ValueError as exc:
            parser.error(str(exc))
        inst = get_instance(args.instance)
        mesh, _ = inst.build()
        partition = partition_mesh(mesh, args.pes)
        dist = DataDistribution(mesh, partition)
        schedule = CommSchedule(dist)
        flops = dist.local_counts["flops"]
        injector = None
        if args.fault_rate > 0:
            from repro.faults import FaultConfig, FaultInjector

            injector = FaultInjector(
                FaultConfig(
                    seed=args.seed,
                    drop_rate=args.fault_rate,
                    bitflip_rate=args.fault_rate,
                    duplicate_rate=args.fault_rate,
                )
            )
        simulator = BspSimulator(flops, schedule, machine, injector=injector)
        monitor = DriftMonitor(
            flops, schedule, machine, thresholds=thresholds
        )
        for step in range(args.steps):
            monitor.observe(
                simulator.run("barrier", step=step), step=step
            )
    else:  # execute: measure the real executor against a fitted host
        log, flops, schedule = _run_traced_workload(
            instance=args.instance,
            pes=args.pes,
            steps=args.steps,
            kernel=args.kernel,
            backend=args.backend,
            fault_rate=args.fault_rate,
            seed=args.seed,
        )
        if not log.traces:
            parser.error("the workload produced no supersteps")
        calibrate = log.traces[: max(1, min(3, len(log.traces) - 1))]
        machine = fit_machine(calibrate, flops, schedule)
        monitor = DriftMonitor(
            flops, schedule, machine, thresholds=thresholds
        )
        for trace in log.traces[len(calibrate):]:
            monitor.observe(trace)

    report = monitor.report()
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render_table())
    if args.max_drift is not None and not report.ok:
        for problem in report.violations():
            print(f"DRIFT FAILURE: {problem}", file=sys.stderr)
        return 1
    return 0


def main_chaos(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-chaos``: supervised kill-schedule runs."""
    import json

    from repro.mesh.instances import INSTANCES
    from repro.model.machine import MACHINES
    from repro.resilience import (
        KillSchedule,
        RecoveryPolicy,
        ScalePolicy,
        parse_grow_schedule,
        render_chaos_report,
        run_chaos,
    )
    from repro.smvp.backends import backend_names

    parser = argparse.ArgumentParser(
        prog="repro-chaos",
        description=(
            "Run a time-stepped distributed simulation under the "
            "self-healing supervisor with a seeded schedule of permanent "
            "PE failures, then prove survivor equivalence: a fresh P-1 "
            "run from the spliced state must match the supervised run "
            "bit for bit."
        ),
    )
    parser.add_argument(
        "--instance",
        default="sf10e",
        choices=sorted(INSTANCES),
        help="mesh instance (default: sf10e)",
    )
    parser.add_argument("--pes", type=int, default=8, help="initial PEs")
    parser.add_argument(
        "--steps", type=int, default=40, help="time steps to run"
    )
    parser.add_argument(
        "--kill",
        default=None,
        help=(
            "kill schedule 'superstep:pe[,superstep:pe...]' "
            "(default: one seeded random kill)"
        ),
    )
    parser.add_argument(
        "--kills",
        type=int,
        default=1,
        help="random kills to draw when --kill is not given",
    )
    parser.add_argument(
        "--grow",
        default=None,
        metavar="STEP[:N][,...]",
        help=(
            "grow schedule 'superstep[:count][,superstep[:count]...]': "
            "bring count fresh PEs online just before that superstep; "
            "the exit code then also demands rejoin equivalence (a "
            "fresh run from the grown layout matches bit for bit)"
        ),
    )
    parser.add_argument(
        "--readmit",
        action="store_true",
        help=(
            "make growth rejoin previously evicted physical PEs after "
            "the probation window instead of provisioning fresh "
            "hardware (requires --grow; the readmitted PE keeps its "
            "physical id and fault history); fails unless at least "
            "one rejoin happened"
        ),
    )
    parser.add_argument(
        "--probation",
        type=int,
        default=8,
        metavar="STEPS",
        help=(
            "supersteps an evicted or quarantined PE must sit out "
            "before readmission (default: 8)"
        ),
    )
    parser.add_argument(
        "--autoscale",
        action="store_true",
        help=(
            "enable the autoscaling policy: the contention-aware cost "
            "oracle may grow the run back after evictions (and shrink "
            "a sustained under-utilized one)"
        ),
    )
    parser.add_argument("--kernel", default="csr")
    parser.add_argument(
        "--backend", default="serial", choices=backend_names()
    )
    parser.add_argument(
        "--machine",
        default="t3e",
        choices=sorted(MACHINES),
        help="machine preset pricing the reconfiguration (needs T_l/T_w)",
    )
    parser.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="transient link-fault rate riding along with the kills",
    )
    parser.add_argument(
        "--flip",
        type=float,
        default=0.0,
        metavar="RATE",
        help=(
            "silent-data-corruption rate: per PE per superstep, flip a "
            "high-order bit in the local input/output vectors at RATE "
            "and in the assembled matrix block at RATE/2; implies ABFT "
            "verification, and the exit code demands every flip "
            "detected, blamed, and healed bit-exactly"
        ),
    )
    parser.add_argument(
        "--sticky",
        default=None,
        metavar="PE[,PE...]",
        help=(
            "physical PE ids with a bad core: their kernel output is "
            "corrupted on every compute (recovery recomputes included), "
            "so the run must escalate them to eviction"
        ),
    )
    parser.add_argument(
        "--sticky-from",
        type=int,
        default=0,
        metavar="STEP",
        help="first superstep at which sticky PEs start corrupting",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        help="enable checkpointing (and the rollback recovery path)",
    )
    parser.add_argument(
        "--checkpoint-interval", type=int, default=10
    )
    parser.add_argument(
        "--no-shadow",
        action="store_true",
        help="disable buddy shadows; force checkpoint rollback recovery",
    )
    parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the survivor-equivalence proof run",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable summary"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run: demo instance, 6 PEs, 10 steps",
    )
    args = parser.parse_args(argv)

    machine = MACHINES[args.machine]
    try:
        machine.require_comm("the reconfiguration cost model")
    except ValueError as exc:
        parser.error(str(exc))
    if args.smoke:
        instance, pes, steps = "demo", 6, 10
    else:
        instance, pes, steps = args.instance, args.pes, args.steps
    sticky: tuple = ()
    if args.sticky:
        try:
            sticky = tuple(
                int(token) for token in args.sticky.split(",") if token.strip()
            )
        except ValueError:
            parser.error(f"bad --sticky list {args.sticky!r}")
        for pe in sticky:
            if not 0 <= pe < pes:
                parser.error(
                    f"--sticky targets PE {pe}, but only {pes} PEs exist"
                )
    if args.flip < 0 or args.flip > 0.4:
        parser.error("--flip must be in [0, 0.4]")
    sdc_configured = args.flip > 0 or bool(sticky)
    try:
        if args.kill:
            kills = KillSchedule.parse(args.kill)
        elif sdc_configured:
            # SDC runs stand alone by default: no permanent kills, the
            # corruption ladder supplies any evictions.
            kills = KillSchedule(())
        else:
            kills = KillSchedule.random(args.seed, pes, steps, args.kills)
    except ValueError as exc:
        parser.error(str(exc))
    for _, pe in kills.kills:
        if pe >= pes:
            parser.error(f"kill targets PE {pe}, but only {pes} PEs exist")
    policy = RecoveryPolicy(prefer_shadow=not args.no_shadow)
    if args.no_shadow and args.checkpoint_dir is None:
        parser.error("--no-shadow requires --checkpoint-dir")
    grows = None
    if args.grow:
        try:
            grows = parse_grow_schedule(args.grow)
        except ValueError as exc:
            parser.error(str(exc))
    if args.readmit and not grows:
        parser.error("--readmit requires --grow")
    if args.probation < 1:
        parser.error("--probation must be at least 1")
    scale_policy = None
    if args.autoscale or args.readmit:
        try:
            scale_policy = ScalePolicy(
                autoscale=args.autoscale,
                probation_steps=args.probation,
                readmit_evicted=args.readmit or args.autoscale,
            )
        except ValueError as exc:
            parser.error(str(exc))

    report = run_chaos(
        instance=instance,
        pes=pes,
        steps=steps,
        kills=kills,
        kernel=args.kernel,
        backend=args.backend,
        policy=policy,
        machine_name=args.machine,
        fault_rate=args.fault_rate,
        seed=args.seed,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_interval=args.checkpoint_interval,
        verify=not args.no_verify,
        flip_rate=args.flip,
        sticky=sticky,
        sticky_from=args.sticky_from,
        grows=grows,
        scale_policy=scale_policy,
        readmit=args.readmit,
    )
    if args.json:
        payload = {
            "instance": report.instance,
            "kernel": report.kernel,
            "backend": report.backend,
            "num_steps": report.num_steps,
            "num_pes_initial": report.num_pes_initial,
            "num_pes_final": report.num_pes_final,
            "kill_schedule": report.kill_schedule,
            "evictions": [
                {
                    "dead_pe": e.dead_pe,
                    "superstep": e.superstep,
                    "recovery_source": e.recovery_source,
                    "recomputed_supersteps": e.recomputed_supersteps,
                    "migrated_words": e.migrated_words,
                    "migrated_blocks": e.migrated_blocks,
                    "shadow_words": e.shadow_words,
                    "repartition_flops": e.repartition_flops,
                    "c_max_after": e.delta.c_max_after,
                    "b_max_after": e.delta.b_max_after,
                    "cost_seconds": (
                        e.cost.t_total if e.cost is not None else None
                    ),
                }
                for e in report.evictions
            ],
            "retried_supersteps": report.supervisor.retried_supersteps,
            "survivor_equivalent": report.survivor_equivalent,
            "survivor_max_abs_diff": report.survivor_max_abs_diff,
            "final_max_displacement": report.final_max_displacement,
            "abft": report.abft,
            "sdc_injected": report.sdc_injected,
            "sdc_detected": report.sdc_detected,
            "sdc_recomputed": report.sdc_recomputed,
            "sdc_scrubbed": report.sdc_scrubbed,
            "sdc_escaped": report.sdc_escaped,
            "sdc_all_detected": report.sdc_all_detected,
            "sdc_blame_correct": report.sdc_blame_correct,
            "clean_equivalent": report.clean_equivalent,
            "clean_max_abs_diff": report.clean_max_abs_diff,
            "sticky_evicted": report.sticky_evicted,
            "grow_schedule": report.grow_schedule,
            "grows": report.grows,
            "readmissions": report.readmissions,
            "grow_applied": report.grow_applied,
            "readmit_ok": report.readmit_ok,
            "scale_events": [
                {
                    "kind": e.kind,
                    "superstep": e.superstep,
                    "pe": e.pe,
                    "num_pes_before": e.num_pes_before,
                    "num_pes_after": e.num_pes_after,
                    "migrated_words": e.migrated_words,
                    "migrated_blocks": e.migrated_blocks,
                    "readmitted": e.readmitted,
                    "reason": e.reason,
                }
                for e in report.scale_events
            ],
            "passed": report.passed,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for line in render_chaos_report(report):
            print(line)
    if not report.passed:
        failed = [
            name
            for name, gate in (
                ("survivor equivalence", report.survivor_equivalent),
                ("all SDC detected", report.sdc_all_detected),
                ("SDC blame attribution", report.sdc_blame_correct),
                ("fault-free bit-equivalence", report.clean_equivalent),
                ("sticky PEs evicted", report.sticky_evicted),
                ("scheduled grows applied", report.grow_applied),
                ("evicted PE readmitted", report.readmit_ok),
            )
            if gate is False
        ]
        print(
            f"CHAOS FAILURE: {'; '.join(failed) or 'gate'} broken",
            file=sys.stderr,
        )
        return 1
    return 0
