"""Command-line entry points.

``repro-tables``
    Regenerate the paper's tables and figures (all, or a selection).

``repro-quake``
    Run a small end-to-end earthquake simulation (mesh, assemble,
    distributed SMVP per time step) and print a summary.

``repro-mesh``
    Build a named mesh instance, report its statistics, optionally
    export it.

``repro-measure``
    Run the Spark98-style kernel suite and print T_f per kernel.

``repro-trace``
    Run time steps through the distributed executor with per-superstep
    instrumentation attached; print the per-step phase table (or JSON).

``repro-faults``
    Sweep fault rates through the BSP simulator and the distributed
    executor's recovery protocol; print the reliability tables.

``repro-lint``
    Determinism / units / BSP-invariant static analysis over the
    source tree (and golden ``*schedule*.json`` files).  Exits 1 on
    findings; gates CI.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def main_tables(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-tables``."""
    from repro.tables.report import TABLES, generate

    parser = argparse.ArgumentParser(
        prog="repro-tables",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "tables",
        nargs="*",
        help=f"tables to generate (default all): {', '.join(TABLES)}",
    )
    args = parser.parse_args(argv)
    names = args.tables or None
    try:
        sys.stdout.write(generate(names))
    except ValueError as exc:
        parser.error(str(exc))
    return 0


def main_quake(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-quake``: a miniature Quake simulation."""
    import numpy as np

    from repro.fem import (
        ExplicitTimeStepper,
        PointSource,
        RickerWavelet,
        assemble_lumped_mass,
        assemble_stiffness,
        materials_from_model,
        stable_timestep,
    )
    from repro.mesh.instances import get_instance, instance_names
    from repro.partition.base import partition_mesh
    from repro.smvp.executor import DistributedSMVP

    parser = argparse.ArgumentParser(
        prog="repro-quake",
        description="Run a small earthquake ground-motion simulation.",
    )
    parser.add_argument(
        "--instance", default="demo", choices=list(instance_names())
    )
    parser.add_argument("--pes", type=int, default=8, help="number of PEs")
    parser.add_argument("--steps", type=int, default=100)
    parser.add_argument(
        "--sequential",
        action="store_true",
        help="use the sequential SMVP instead of the distributed executor",
    )
    parser.add_argument(
        "--backend",
        default="serial",
        help="execution backend for the compute phase "
        "(serial / threaded / shared-memory)",
    )
    args = parser.parse_args(argv)

    inst = get_instance(args.instance)
    mesh, _ = inst.build()
    model = inst.model()
    materials = materials_from_model(mesh, model)
    stiffness = assemble_stiffness(mesh, materials)
    mass = assemble_lumped_mass(mesh, materials)
    dt = stable_timestep(mesh, materials)
    print(f"instance={args.instance} {mesh} dt={dt:.4f}s")

    smvp = None
    if not args.sequential:
        partition = partition_mesh(mesh, args.pes)
        smvp = DistributedSMVP(
            mesh, partition, materials, backend=args.backend
        )
        print(
            f"distributed on {args.pes} PEs (backend={smvp.backend_name}): "
            f"C_max={smvp.schedule.c_max} B_max={smvp.schedule.b_max}"
        )
    source = PointSource.at_point(
        mesh,
        (model.center_x, model.center_y, -4000.0),
        RickerWavelet(frequency=1.0 / inst.period, amplitude=1e12),
    )
    stepper = ExplicitTimeStepper(
        stiffness, mass, dt, damping_alpha=0.02, smvp=smvp
    )
    try:
        records, _ = stepper.run(
            args.steps, force_at=lambda t: source.force(t, mesh.num_nodes)
        )
    finally:
        if smvp is not None:
            smvp.close()
    peak = max(r.max_displacement for r in records)
    print(
        f"ran {args.steps} steps to t={stepper.time:.2f}s; "
        f"peak displacement {peak:.3e} m; "
        f"finite={np.isfinite(peak)}"
    )
    return 0


def main_mesh(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-mesh``: build, inspect, and export meshes."""
    from repro.mesh.instances import get_instance, instance_names
    from repro.mesh.io import save_mesh, save_mesh_text
    from repro.mesh.quality import quality_report

    parser = argparse.ArgumentParser(
        prog="repro-mesh",
        description="Generate a named instance mesh and report/export it.",
    )
    parser.add_argument(
        "--instance", default="sf10e", choices=list(instance_names())
    )
    parser.add_argument(
        "--out", default=None, help="write the mesh to this .npz path"
    )
    parser.add_argument(
        "--out-text", default=None, help="write the portable text format"
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="force a fresh build"
    )
    args = parser.parse_args(argv)

    inst = get_instance(args.instance)
    if not inst.is_enabled():
        parser.error(
            f"instance {args.instance} is gated; set {inst.gate}=1"
        )
    mesh, report = inst.build(use_cache=not args.no_cache)
    print(f"{args.instance}: {mesh}")
    if report is not None:
        print(
            f"  generated in {report.seconds_total:.1f}s "
            f"(octree {report.octree_leaves} leaves, depth "
            f"{report.octree_max_level}, method {report.method})"
        )
    print(f"  quality: {quality_report(mesh)}")
    if inst.paper_mesh_sizes:
        paper = inst.paper_mesh_sizes
        print(
            f"  paper ({inst.paper_name}): nodes={paper['nodes']:,} "
            f"elements={paper['elements']:,} edges={paper['edges']:,}"
        )
    if args.out:
        save_mesh(mesh, args.out)
        print(f"  wrote {args.out}")
    if args.out_text:
        save_mesh_text(mesh, args.out_text)
        print(f"  wrote {args.out_text}")
    return 0


def main_faults(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-faults``: the reliability sweep."""
    from repro.mesh.instances import INSTANCES
    from repro.model.machine import MACHINES
    from repro.tables.reliability import (
        DEFAULT_INSTANCES,
        DEFAULT_RATES,
        table_fault_recovery,
        table_reliability,
    )

    parser = argparse.ArgumentParser(
        prog="repro-faults",
        description=(
            "Sweep fault rates (stragglers, dropped/corrupt/duplicated "
            "blocks, transient PE failures) and report efficiency/runtime "
            "degradation plus executor-level detection and recovery."
        ),
    )
    parser.add_argument(
        "--instances",
        nargs="*",
        default=list(DEFAULT_INSTANCES),
        help="instances to sweep (default: sf10e sf5e)",
    )
    parser.add_argument("--pes", type=int, default=32, help="number of PEs")
    parser.add_argument(
        "--rates",
        type=float,
        nargs="*",
        default=list(DEFAULT_RATES),
        help="fault rates to sweep (0 = the paper's perfect machine)",
    )
    parser.add_argument(
        "--steps",
        type=int,
        default=20,
        help="supersteps sampled per cell (extrapolated to 6000)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--machine",
        default="t3e",
        choices=sorted(MACHINES),
        help="machine preset (needs T_l/T_w, e.g. t3e)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run: demo instance, 8 PEs, 3 supersteps",
    )
    args = parser.parse_args(argv)

    machine = MACHINES[args.machine]
    try:
        machine.require_comm("the reliability sweep")
    except ValueError as exc:
        parser.error(str(exc))

    if args.smoke:
        instances, pes, rates, steps = ["demo"], 8, [0.0, 0.05], 3
    else:
        instances, pes, rates, steps = (
            args.instances,
            args.pes,
            args.rates,
            args.steps,
        )
    unknown = [n for n in instances if n not in INSTANCES]
    if unknown:
        parser.error(f"unknown instances {unknown}")
    bad_rates = [r for r in rates if not 0.0 <= r <= 0.5]
    if bad_rates:
        parser.error(
            f"rates must be in [0, 0.5] (uniform fault mix), got {bad_rates}"
        )

    print(
        table_reliability(
            instances=instances,
            num_parts=pes,
            rates=rates,
            machine=machine,
            num_steps=steps,
            seed=args.seed,
        )
    )
    print()
    recovery_rate = max([r for r in rates if r > 0], default=0.05)
    print(
        table_fault_recovery(
            instance="demo",
            num_parts=min(pes, 8),
            rate=min(recovery_rate, 0.1),
            num_exchanges=2 if args.smoke else 5,
            seed=args.seed,
        )
    )
    return 0


def main_lint(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-lint``: the static-analysis gate."""
    from repro.analysis import (
        ALL_RULES,
        lint_paths,
        render_json,
        render_text,
    )

    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Static analysis for reproducibility: determinism lints "
            "(unseeded RNG, wall-clock reads, set-order iteration), "
            "dimensional consistency of the Eq. (1)/(2) model code, and "
            "BSP exchange-schedule invariants (pairwise symmetry, "
            "deadlock-freedom, shared-node coverage) over golden "
            "*schedule*.json files."
        ),
        epilog=(
            "Suppress an intentional finding with an inline "
            "`# repro-lint: ignore[rule]` pragma. Exit status: 0 clean, "
            "1 findings, 2 usage error."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable JSON report instead of text",
    )
    parser.add_argument(
        "--rules",
        nargs="*",
        default=None,
        metavar="RULE",
        help="restrict to these rules (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        from repro.analysis.core import _ensure_rules_loaded

        _ensure_rules_loaded()
        for name, rule in ALL_RULES.items():
            print(f"{name:<22} {rule.description}")
        return 0
    try:
        findings = lint_paths(args.paths, rules=args.rules)
    except (FileNotFoundError, ValueError) as exc:
        parser.error(str(exc))
    if args.json:
        print(render_json(findings))
    else:
        sys.stdout.write(render_text(findings))
    return 1 if findings else 0


def main_measure(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-measure``: the Spark98-style suite."""
    from repro.smvp.backends import backend_names
    from repro.smvp.spark98 import SUITE, run_suite

    parser = argparse.ArgumentParser(
        prog="repro-measure",
        description="Measure T_f for the Spark98-style kernel suite.",
    )
    parser.add_argument("--instance", default="sf10e")
    parser.add_argument("--pes", type=int, default=8)
    parser.add_argument("--repetitions", type=int, default=3)
    parser.add_argument(
        "--kernels", nargs="*", default=None, help=f"subset of {SUITE}"
    )
    parser.add_argument(
        "--backend",
        default="serial",
        choices=backend_names(),
        help="execution backend for the partitioned kernels (lmv/mmv)",
    )
    args = parser.parse_args(argv)
    kernels = tuple(args.kernels) if args.kernels else SUITE
    unknown = [k for k in kernels if k not in SUITE]
    if unknown:
        parser.error(f"unknown kernels {unknown}")
    results = run_suite(
        instance=args.instance,
        num_parts=args.pes,
        repetitions=args.repetitions,
        kernels=kernels,
        backend=args.backend,
    )
    print(
        f"{'kernel':<8} {'p':>4} {'backend':<13} {'flops':>12} "
        f"{'s/SMVP':>12} {'T_f ns':>9} {'MFLOPS':>8}"
    )
    for name, run in results.items():
        print(
            f"{name:<8} {run.num_parts:>4} {run.backend:<13} {run.flops:>12,} "
            f"{run.seconds_per_smvp:>12.6f} {run.tf_ns:>9.2f} "
            f"{run.mflops:>8.0f}"
        )
    return 0


def main_trace(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-trace``: per-superstep instrumentation.

    Runs a short time-stepped simulation with the distributed executor
    and a :class:`~repro.smvp.trace.TraceLog` attached, then prints the
    per-step phase table (wall time per phase, per-PE traffic, faults)
    or the JSON report.
    """
    import numpy as np

    from repro.faults import FaultConfig, FaultInjector
    from repro.fem import (
        ExplicitTimeStepper,
        assemble_lumped_mass,
        assemble_stiffness,
        materials_from_model,
        stable_timestep,
    )
    from repro.mesh.instances import get_instance, instance_names
    from repro.partition.base import partition_mesh
    from repro.smvp.backends import backend_names
    from repro.smvp.executor import DistributedSMVP
    from repro.smvp.kernels import kernel_names
    from repro.smvp.trace import TraceLog

    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description=(
            "Trace the superstep engine: run time steps through the "
            "distributed executor and print per-phase wall times, "
            "per-PE traffic, and fault statistics for every superstep."
        ),
    )
    parser.add_argument(
        "--instance", default="demo", choices=list(instance_names())
    )
    parser.add_argument("--pes", type=int, default=8, help="number of PEs")
    parser.add_argument("--steps", type=int, default=10)
    parser.add_argument(
        "--kernel", default="csr", choices=kernel_names()
    )
    parser.add_argument(
        "--backend", default="serial", choices=backend_names()
    )
    parser.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="uniform drop/bitflip/duplicate rate through the exchange "
        "middleware (0 = clean path)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable JSON report instead of the table",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.fault_rate <= 0.3:
        parser.error("--fault-rate must be in [0, 0.3]")

    inst = get_instance(args.instance)
    mesh, _ = inst.build()
    materials = materials_from_model(mesh, inst.model())
    stiffness = assemble_stiffness(mesh, materials)
    mass = assemble_lumped_mass(mesh, materials)
    dt = stable_timestep(mesh, materials)
    partition = partition_mesh(mesh, args.pes)
    injector = None
    if args.fault_rate > 0:
        injector = FaultInjector(
            FaultConfig(
                seed=args.seed,
                drop_rate=args.fault_rate,
                bitflip_rate=args.fault_rate,
                duplicate_rate=args.fault_rate,
            )
        )
    smvp = DistributedSMVP(
        mesh,
        partition,
        materials,
        kernel=args.kernel,
        backend=args.backend,
        injector=injector,
    )
    log = TraceLog()
    stepper = ExplicitTimeStepper(stiffness, mass, dt, smvp=smvp)
    force = np.zeros(3 * mesh.num_nodes)
    force[: min(300, force.size)] = 1e9
    try:
        stepper.run(
            args.steps, force_at=lambda t: force, trace_sink=log
        )
    finally:
        smvp.close()
    if args.json:
        print(log.render_json())
    else:
        print(
            f"instance={args.instance} pes={args.pes} "
            f"kernel={args.kernel} backend={args.backend} "
            f"fault_rate={args.fault_rate}"
        )
        print(log.render_table())
    return 0
