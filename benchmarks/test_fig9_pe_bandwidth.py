"""Figure 9 bench: required sustained per-PE bandwidth for sf2."""

import pytest

from repro.model.requirements import pe_bandwidth_requirement_rows
from repro.tables.fig9 import paper_inputs, table_fig9


def test_fig9_pe_bandwidth(benchmark, emit):
    inputs = paper_inputs()
    rows = benchmark.pedantic(
        lambda: pe_bandwidth_requirement_rows(inputs), rounds=3, iterations=1
    )
    emit("fig9_pe_bandwidth", table_fig9())
    worst_100 = max(
        r.mbytes_per_second
        for r in rows
        if r.mflops == 100.0 and r.efficiency == 0.9
    )
    worst_200 = max(
        r.mbytes_per_second
        for r in rows
        if r.mflops == 200.0 and r.efficiency == 0.9
    )
    # Paper prose: ~120 MB/s at 100 MFLOPS, ~300 MB/s at 200 MFLOPS.
    assert worst_100 == pytest.approx(140, rel=0.02)
    assert worst_200 == pytest.approx(279, rel=0.02)
