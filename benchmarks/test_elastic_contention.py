"""Contention-aware cost oracle calibration on an sf10e PE sweep.

Plants a contended machine (T3E constants plus a queue-search
coefficient ``T_q``), "measures" barrier supersteps with the BSP
simulator at p = 2, 4, 8, and fits both the uniform Eq. (2) machine
and the contended one with :func:`fit_machine_contended`.  The
acceptance criterion for the elastic-scale-out oracle is that the
contention term reduces the Eq. (2) residual versus the uniform model
on this sweep; the calibration record is archived under
``benchmarks/output/BENCH_elastic.json``.
"""

import json
from pathlib import Path

from repro.mesh.instances import get_instance
from repro.model.machine import CRAY_T3E, Machine
from repro.partition.base import partition_mesh
from repro.simulate.bsp import BspSimulator
from repro.smvp.distribution import DataDistribution
from repro.smvp.schedule import CommSchedule
from repro.telemetry.drift import (
    contended_t_comm,
    eq2_t_comm,
    fit_machine_contended,
)

OUTPUT_DIR = Path(__file__).parent / "output"

INSTANCE = "sf10e"
PE_SWEEP = (2, 4, 8)
STEPS = 3

#: Ground truth: T3E block constants plus a planted queue-search cost.
#: The magnitude is chosen so the contention term is a visible fraction
#: of T_comm at p = 8 (Q_max tens of messages) without dominating it.
PLANTED = Machine(
    name="t3e-contended",
    tf=CRAY_T3E.tf,
    tl=CRAY_T3E.tl,
    tw=CRAY_T3E.tw,
    tq=2e-7,
)


def _measure(mesh, p):
    """Simulated barrier supersteps at one layout of the sweep."""
    partition = partition_mesh(mesh, p, seed=0)
    distribution = DataDistribution(mesh, partition)
    schedule = CommSchedule(distribution)
    flops = distribution.local_counts["flops"]
    sim = BspSimulator(flops, schedule, PLANTED)
    breakdowns = [sim.run("barrier", step=s) for s in range(STEPS)]
    return breakdowns, flops, schedule


def test_contention_fit_reduces_eq2_residual(emit):
    inst = get_instance(INSTANCE)
    mesh, _ = inst.build()

    sweep = []
    layouts = {}
    for p in PE_SWEEP:
        breakdowns, flops, schedule = _measure(mesh, p)
        sweep.append((breakdowns, flops, schedule))
        layouts[p] = (breakdowns, schedule)

    fit = fit_machine_contended(sweep, name="sf10e-fit")

    # Acceptance: the contention term explains measured T_comm the
    # uniform Eq. (2) model cannot — the fit must not be worse, and on
    # this planted sweep it must be strictly better.
    assert fit.contended_residual <= fit.uniform_residual
    assert fit.residual_reduction > 0.0
    assert fit.machine.tq is not None and fit.machine.tq > 0.0
    assert fit.samples == len(PE_SWEEP) * STEPS

    per_p = {}
    for p, (breakdowns, schedule) in sorted(layouts.items()):
        measured = breakdowns[0].t_comm
        uniform_pred = eq2_t_comm(schedule, fit.uniform_machine)
        contended_pred = contended_t_comm(schedule, fit.machine)
        per_p[str(p)] = {
            "b_max": int(schedule.b_max),
            "c_max": int(schedule.c_max),
            "q_max": int(schedule.q_max),
            "measured_t_comm": measured,
            "uniform_t_comm": uniform_pred,
            "contended_t_comm": contended_pred,
            "uniform_error": abs(uniform_pred - measured),
            "contended_error": abs(contended_pred - measured),
        }
        # The fitted oracle must track the planted machine more closely
        # than the uniform model at every layout of the sweep.
        assert per_p[str(p)]["contended_error"] <= (
            per_p[str(p)]["uniform_error"] + 1e-12
        )

    record = {
        "instance": INSTANCE,
        "pe_sweep": list(PE_SWEEP),
        "steps_per_layout": STEPS,
        "samples": fit.samples,
        "planted": {
            "tl": PLANTED.tl,
            "tw": PLANTED.tw,
            "tq": PLANTED.tq,
        },
        "uniform": {
            "tl": fit.uniform_machine.tl,
            "tw": fit.uniform_machine.tw,
            "residual_rms": fit.uniform_residual,
        },
        "contended": {
            "tl": fit.machine.tl,
            "tw": fit.machine.tw,
            "tq": fit.machine.tq,
            "residual_rms": fit.contended_residual,
        },
        "residual_reduction": fit.residual_reduction,
        "per_p": per_p,
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "BENCH_elastic.json").write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n"
    )

    lines = [
        "Contention-aware Eq.(2) calibration (sf10e, p = "
        + ", ".join(str(p) for p in PE_SWEEP)
        + ")",
        f"  uniform   residual: {fit.uniform_residual:.3e} s RMS",
        f"  contended residual: {fit.contended_residual:.3e} s RMS"
        f"  (reduction {100.0 * fit.residual_reduction:.1f}%)",
        f"  fitted tq: {fit.machine.tq:.3e} s"
        f"  (planted {PLANTED.tq:.3e} s)",
    ]
    emit("BENCH_elastic", "\n".join(lines))
