"""Extension bench: communication/computation overlap.

The paper's footnote 1 notes that overlapping the phases is possible
"with difficult modifications" and deliberately models the non-
overlapped program.  This bench quantifies what the modification would
buy: the BSP simulator's overlap mode hides communication behind
interior flops, and we sweep the efficiency gain across PE counts on
T3E constants.
"""

import numpy as np

from repro.model.machine import CRAY_T3E
from repro.partition.base import partition_mesh
from repro.mesh.instances import get_instance
from repro.simulate import BspSimulator
from repro.smvp.distribution import DataDistribution
from repro.smvp.schedule import CommSchedule
from repro.tables.render import Table


def boundary_flops(dist: DataDistribution) -> np.ndarray:
    """Flops that must precede the exchange: the exact nonzero count of
    the shared-node rows of each PE's local matrix (see
    :attr:`DataDistribution.boundary_flops`)."""
    return dist.boundary_flops.astype(float)


def test_extension_overlap(benchmark, emit):
    mesh, _ = get_instance("sf10e").build()
    table = Table(
        title="Extension: comm/comp overlap on sf10e (Cray T3E constants)",
        headers=[
            "p",
            "barrier T_smvp (ms)",
            "overlap T_smvp (ms)",
            "speedup",
            "barrier E",
            "overlap E",
        ],
    )
    speedups = {}
    for p in (8, 16, 32, 64, 128):
        partition = partition_mesh(mesh, p)
        dist = DataDistribution(mesh, partition)
        schedule = CommSchedule(dist)
        flops = dist.local_counts["flops"]
        sim = BspSimulator(
            flops, schedule, CRAY_T3E, boundary_flops_per_pe=boundary_flops(dist)
        )
        barrier = sim.run("barrier")
        overlap = sim.run("overlap")
        speedups[p] = barrier.t_smvp / overlap.t_smvp
        table.add_row(
            p,
            round(barrier.t_smvp * 1e3, 3),
            round(overlap.t_smvp * 1e3, 3),
            f"{speedups[p]:.2f}x",
            round(barrier.efficiency, 3),
            round(overlap.efficiency, 3),
        )
    table.add_note(
        "overlap hides latency-dominated exchanges; gains grow with p as "
        "the communication phase's share grows"
    )
    emit("extension_overlap", table)

    # Overlap never hurts.  The gain peaks at moderate PE counts: at
    # p=128 on a 7k-node mesh most nodes are shared, so almost no
    # "interior" flops remain to hide communication behind.
    assert all(s >= 1.0 - 1e-12 for s in speedups.values())
    assert max(speedups.values()) > 1.03

    # Benchmark the overlap-mode simulation itself.
    partition = partition_mesh(mesh, 64)
    dist = DataDistribution(mesh, partition)
    sim = BspSimulator(
        dist.local_counts["flops"],
        CommSchedule(dist),
        CRAY_T3E,
        boundary_flops_per_pe=boundary_flops(dist),
    )
    benchmark(lambda: sim.run("overlap"))
