"""Extension bench: communication/computation overlap, model and measured.

The paper's footnote 1 notes that overlapping the phases is possible
"with difficult modifications" and deliberately models the non-
overlapped program.  ``test_extension_overlap`` quantifies what the
modification would buy in the BSP *model* (the simulator's overlap
mode hides communication behind interior flops, swept across PE counts
on T3E constants).

``test_batched_overlap_measured`` is the promotion of that probe to a
*measured* benchmark on the real engine: flat (standard phase order)
vs overlap (boundary-first compute, exchange in flight during interior
rows) backends across r ∈ {1, 4, 16} right-hand-side columns, plus the
r=1×16 sequential baseline the block engine exists to beat.  Archives
``benchmarks/output/BENCH_batched.json``; run with ``REPRO_LARGE=1``
to measure on sf2e (~374k nodes), where the ≥4x per-superstep
throughput acceptance gate is asserted.
"""

import json
import os
from pathlib import Path

import numpy as np

from repro.fem.material import materials_from_model
from repro.mesh.instances import get_instance
from repro.model.machine import CRAY_T3E
from repro.partition.base import partition_mesh
from repro.simulate import BspSimulator
from repro.smvp.distribution import DataDistribution
from repro.smvp.executor import DistributedSMVP
from repro.smvp.schedule import CommSchedule
from repro.tables.render import Table
from repro.util.clock import now

OUTPUT_DIR = Path(__file__).parent / "output"

PES = 8
REPS = 7
RHS_VALUES = (1, 4, 16)
#: Noise tolerance on the overlap-vs-flat CI gate, per instance:
#: sf10e supersteps take single-digit milliseconds, so wire-thread
#: startup jitter on loaded runners is a visible fraction of the
#: measurement; sf2e amortizes it and gets the strict gate.
OVERLAP_TOLERANCE = {"sf2e": 1.10, "sf10e": 1.30}


def boundary_flops(dist: DataDistribution) -> np.ndarray:
    """Flops that must precede the exchange: the exact nonzero count of
    the shared-node rows of each PE's local matrix (see
    :attr:`DataDistribution.boundary_flops`)."""
    return dist.boundary_flops.astype(float)


def test_extension_overlap(benchmark, emit):
    mesh, _ = get_instance("sf10e").build()
    table = Table(
        title="Extension: comm/comp overlap on sf10e (Cray T3E constants)",
        headers=[
            "p",
            "barrier T_smvp (ms)",
            "overlap T_smvp (ms)",
            "speedup",
            "barrier E",
            "overlap E",
        ],
    )
    speedups = {}
    for p in (8, 16, 32, 64, 128):
        partition = partition_mesh(mesh, p)
        dist = DataDistribution(mesh, partition)
        schedule = CommSchedule(dist)
        flops = dist.local_counts["flops"]
        sim = BspSimulator(
            flops, schedule, CRAY_T3E, boundary_flops_per_pe=boundary_flops(dist)
        )
        barrier = sim.run("barrier")
        overlap = sim.run("overlap")
        speedups[p] = barrier.t_smvp / overlap.t_smvp
        table.add_row(
            p,
            round(barrier.t_smvp * 1e3, 3),
            round(overlap.t_smvp * 1e3, 3),
            f"{speedups[p]:.2f}x",
            round(barrier.efficiency, 3),
            round(overlap.efficiency, 3),
        )
    table.add_note(
        "overlap hides latency-dominated exchanges; gains grow with p as "
        "the communication phase's share grows"
    )
    emit("extension_overlap", table)

    # Overlap never hurts.  The gain peaks at moderate PE counts: at
    # p=128 on a 7k-node mesh most nodes are shared, so almost no
    # "interior" flops remain to hide communication behind.
    assert all(s >= 1.0 - 1e-12 for s in speedups.values())
    assert max(speedups.values()) > 1.03

    # Benchmark the overlap-mode simulation itself.
    partition = partition_mesh(mesh, 64)
    dist = DataDistribution(mesh, partition)
    sim = BspSimulator(
        dist.local_counts["flops"],
        CommSchedule(dist),
        CRAY_T3E,
        boundary_flops_per_pe=boundary_flops(dist),
    )
    benchmark(lambda: sim.run("overlap"))


def _best_of(reps, fn):
    """Minimum wall time over ``reps`` calls (noise-robust timing)."""
    best = float("inf")
    for _ in range(reps):
        t0 = now()
        fn()
        best = min(best, now() - t0)
    return best


def test_batched_overlap_measured(emit):
    instance = "sf2e" if os.environ.get("REPRO_LARGE") == "1" else "sf10e"
    inst = get_instance(instance)
    mesh, _ = inst.build()
    materials = materials_from_model(mesh, inst.model())
    partition = partition_mesh(mesh, PES, seed=0)
    n = 3 * mesh.num_nodes
    rng = np.random.default_rng(0)
    x_cols = rng.standard_normal((n, max(RHS_VALUES)))

    results = {}
    reference = {}
    for backend in ("serial", "overlap"):
        per_r = {}
        with DistributedSMVP(
            mesh, partition, materials, backend=backend
        ) as ds:
            flops_1 = int(ds.flops_per_pe().sum())
            for r in RHS_VALUES:
                x = x_cols[:, 0].copy() if r == 1 else x_cols[:, :r].copy()
                # A time-stepping caller reuses its output buffer, so
                # the timed loop does too (out= keeps the pages warm).
                out = np.empty(n if r == 1 else (n, r))
                y = ds.multiply(x, out=out).copy()  # warmup
                t = _best_of(REPS, lambda: ds.multiply(x, out=out))
                # Phase breakdown via one traced repeat (min over REPS).
                traces = []
                ds.trace_sink = traces.append
                _best_of(REPS, lambda: ds.multiply(x, out=out))
                ds.trace_sink = None
                per_r[str(r)] = {
                    "t_smvp_s": t,
                    "cols_per_s": r / t,
                    "tf_ns": 1e9 * t / (flops_1 * r),
                    "t_comp_s": min(tr.t_comp for tr in traces),
                    "t_comm_s": min(tr.t_comm for tr in traces),
                }
                key = (backend, r)
                reference[key] = y
            # The r=1×16 sequential baseline: what serving 16 scenarios
            # costs without the block engine (16 traversals, 16
            # exchanges) — with the same warm-buffer courtesy.
            seq_cols = [x_cols[:, j].copy() for j in range(max(RHS_VALUES))]
            seq_out = np.empty(n)

            def _sequential():
                for col in seq_cols:
                    ds.multiply(col, out=seq_out)

            _sequential()  # warmup
            per_r["sequential_16x1_s"] = _best_of(REPS, _sequential)
        results[backend] = per_r

    # Per-column bit-identity: every backend, every r, every column
    # matches the serial vector engine exactly.
    with DistributedSMVP(mesh, partition, materials) as ds:
        y_vec = {
            j: ds.multiply(x_cols[:, j].copy())
            for j in range(max(RHS_VALUES))
        }
    for (backend, r), y in reference.items():
        if r == 1:
            assert np.array_equal(y, y_vec[0]), backend
        else:
            for j in range(r):
                assert np.array_equal(y[:, j], y_vec[j]), (backend, r, j)

    r_max = str(max(RHS_VALUES))
    seq = results["serial"]["sequential_16x1_s"]
    block_speedup = {
        backend: seq / results[backend][r_max]["t_smvp_s"]
        for backend in results
    }
    overlap_vs_flat = (
        results["serial"][r_max]["t_smvp_s"]
        / results["overlap"][r_max]["t_smvp_s"]
    )
    # Traversal amortization in the compute phase alone: how much of
    # the paper's "one traversal, r columns" promise the kernel layer
    # delivers, independent of scatter/gather overhead.
    compute_speedup = {
        backend: (
            max(RHS_VALUES)
            * results[backend]["1"]["t_comp_s"]
            / results[backend][r_max]["t_comp_s"]
        )
        for backend in results
    }
    payload = {
        "instance": instance,
        "pes": PES,
        "repetitions": REPS,
        "rhs_values": list(RHS_VALUES),
        "backends": results,
        "block_speedup_r16": block_speedup,
        "compute_speedup_r16": compute_speedup,
        "overlap_vs_flat_r16": overlap_vs_flat,
        "overlap_tolerance": OVERLAP_TOLERANCE[instance],
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "BENCH_batched.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    table = Table(
        title=f"Batched supersteps, measured on {instance} (p={PES})",
        headers=["backend", "r", "t_smvp (ms)", "cols/s", "T_f ns/flop/col"],
    )
    for backend in ("serial", "overlap"):
        for r in RHS_VALUES:
            rec = results[backend][str(r)]
            table.add_row(
                backend,
                r,
                round(rec["t_smvp_s"] * 1e3, 3),
                round(rec["cols_per_s"], 1),
                round(rec["tf_ns"], 2),
            )
    table.add_note(
        f"sequential 16x r=1 baseline: {seq * 1e3:.3f} ms; block r=16 "
        f"speedup serial {block_speedup['serial']:.2f}x, overlap "
        f"{block_speedup['overlap']:.2f}x"
    )
    emit("batched_overlap", table)

    # CI gate: at r=16 the overlap backend must at least match the flat
    # engine (tolerance absorbs wire-thread jitter on small meshes).
    assert (
        results["overlap"][r_max]["t_smvp_s"]
        <= OVERLAP_TOLERANCE[instance] * results["serial"][r_max]["t_smvp_s"]
    ), f"overlap slower than flat at r=16: {overlap_vs_flat:.2f}x"

    # Acceptance gate (sf2e): one r=16 block superstep serves 16
    # scenarios >= 4x faster than 16 sequential solves.
    if instance == "sf2e":
        assert max(block_speedup.values()) >= 4.0, block_speedup
