"""Figure 10 bench: latency vs burst-bandwidth tradeoff for sf2/128."""

import pytest

from repro.model import FUTURE_200MFLOPS, ModelInputs
from repro.model.lowlevel import (
    MAXIMAL_BLOCKS,
    four_word_blocks,
    latency_for_tradeoff,
    tradeoff_curve,
)
from repro.tables.fig10 import table_fig10a, table_fig10b


def test_fig10_tradeoff(benchmark, emit):
    inputs = ModelInputs.from_paper("sf2", 128)

    def both_panels():
        return (
            tradeoff_curve(inputs, 0.9, FUTURE_200MFLOPS, MAXIMAL_BLOCKS),
            tradeoff_curve(inputs, 0.9, FUTURE_200MFLOPS, four_word_blocks()),
        )

    maximal, four = benchmark.pedantic(both_panels, rounds=3, iterations=1)
    emit("fig10_tradeoff", table_fig10a(), table_fig10b())
    # The figure's headline: latency matters.  Even at infinite burst
    # bandwidth, maximal blocks demand single-digit microseconds and
    # cache-line blocks ~100 ns at E=0.9.
    tl_max = latency_for_tradeoff(inputs, 0.9, FUTURE_200MFLOPS, 0.0)
    tl_4w = latency_for_tradeoff(
        inputs, 0.9, FUTURE_200MFLOPS, 0.0, four_word_blocks()
    )
    assert tl_max == pytest.approx(9.3e-6, rel=0.02)
    assert tl_4w == pytest.approx(115e-9, rel=0.02)
    # Every feasible point on each curve is monotone in bandwidth.
    assert [t for _, t in maximal] == sorted(t for _, t in maximal)
    assert [t for _, t in four] == sorted(t for _, t in four)
