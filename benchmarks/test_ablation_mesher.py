"""Ablation bench: stuffing vs Delaunay mesh construction.

Quantifies the substitution decision documented in DESIGN.md: Qhull's
Delaunay degrades badly on strongly graded point sets, while the
conforming octree stuffing is linear-time — and the two produce meshes
with equivalent architectural statistics.
"""

import pytest

from repro.mesh.generator import generate_mesh
from repro.stats import smvp_statistics
from repro.tables.render import Table
from repro.velocity.basin import default_san_fernando_like_model

#: Demo scale keeps the Delaunay side fast enough to benchmark.
PERIOD = 25.0
PPW = 1.1111


@pytest.mark.parametrize("method", ["stuffing", "delaunay"])
def test_mesher_speed(benchmark, method):
    model = default_san_fernando_like_model()
    mesh, _ = benchmark.pedantic(
        lambda: generate_mesh(
            model, period=PERIOD, method=method, points_per_wavelength=PPW
        ),
        rounds=2,
        iterations=1,
    )
    mesh.validate()


def test_ablation_mesher(emit):
    model = default_san_fernando_like_model()
    table = Table(
        title="Ablation: mesh construction method (demo scale)",
        headers=[
            "method",
            "nodes",
            "elements",
            "edges",
            "mean degree",
            "C_max@16",
            "B_max@16",
            "F/C@16",
        ],
    )
    stats_by_method = {}
    for method in ("stuffing", "delaunay"):
        mesh, _ = generate_mesh(
            model, period=PERIOD, method=method, points_per_wavelength=PPW
        )
        stats = smvp_statistics(mesh, num_parts=16)
        stats_by_method[method] = (mesh, stats)
        table.add_row(
            method,
            mesh.num_nodes,
            mesh.num_elements,
            mesh.num_edges,
            round(float(mesh.node_degrees.mean()), 1),
            stats.c_max,
            stats.b_max,
            round(stats.f_over_c, 1),
        )
    table.add_note(
        "both methods yield unstructured meshes with equivalent "
        "communication character; stuffing scales to sf1e, Qhull does not"
    )
    emit("ablation_mesher", table)

    stuff_mesh, stuff_stats = stats_by_method["stuffing"]
    del_mesh, del_stats = stats_by_method["delaunay"]
    # Same order of magnitude in every architectural statistic.
    assert 0.3 < stuff_stats.c_max / del_stats.c_max < 3.0
    assert 0.3 < stuff_stats.f_over_c / del_stats.f_over_c < 3.0
    assert 10 < stuff_mesh.node_degrees.mean() < 20
    assert 10 < del_mesh.node_degrees.mean() < 20
