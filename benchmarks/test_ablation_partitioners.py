"""Ablation bench: partitioner comparison.

The paper relies on the partitioner doing "an excellent job of
distributing computation evenly" and a good job minimizing shared
nodes.  This bench compares every implemented partitioner on those
terms (and on the model quantities C_max/B_max) at sf10e/32.
"""

import pytest

from repro.mesh.instances import get_instance
from repro.partition import (
    PARTITIONERS,
    partition_mesh,
    partition_metrics,
    register_all,
    smooth_partition,
)
from repro.stats import smvp_statistics
from repro.tables.render import Table

register_all()
METHODS = sorted(PARTITIONERS)


@pytest.mark.parametrize("method", METHODS)
def test_partition_speed(benchmark, method):
    mesh, _ = get_instance("sf10e").build()
    part = benchmark.pedantic(
        lambda: partition_mesh(mesh, 32, method=method, seed=0),
        rounds=2,
        iterations=1,
    )
    assert part.imbalance() < 1.01


def test_ablation_partitioners(emit):
    mesh, _ = get_instance("sf10e").build()
    table = Table(
        title="Ablation: partitioners on sf10e/32 (lower C_max/shared is better)",
        headers=[
            "method",
            "imbalance",
            "shared nodes",
            "replication",
            "cut faces",
            "C_max",
            "B_max",
            "F/C",
            "beta",
        ],
    )
    shared_by_method = {}
    for method in METHODS:
        base = partition_mesh(mesh, 32, method=method, seed=0)
        for part in (base, smooth_partition(mesh, base)):
            metrics = partition_metrics(mesh, part)
            stats = smvp_statistics(mesh, partition=part)
            shared_by_method[part.method] = metrics.shared_nodes
            table.add_row(
                part.method,
                round(metrics.imbalance, 3),
                metrics.shared_nodes,
                round(metrics.replication, 3),
                metrics.cut_faces,
                stats.c_max,
                stats.b_max,
                round(stats.f_over_c, 1),
                round(stats.beta, 2),
            )
    table.add_note("random is the no-locality baseline the others must beat")
    table.add_note("+smooth rows add the greedy boundary refinement pass")
    emit("ablation_partitioners", table)
    for method in METHODS:
        if method != "random":
            assert shared_by_method[method] < 0.7 * shared_by_method["random"]
        # Smoothing never hurts the shared-node count.
        assert shared_by_method[f"{method}+smooth"] <= shared_by_method[method]
