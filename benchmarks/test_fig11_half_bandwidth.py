"""Figure 11 bench: half-bandwidth design targets for the sf2 SMVPs."""

import pytest

from repro.tables.fig11 import compute_fig11, table_fig11


def test_fig11_half_bandwidth(benchmark, emit):
    points = benchmark.pedantic(
        lambda: compute_fig11("paper"), rounds=3, iterations=1
    )
    emit("fig11_half_bandwidth", table_fig11("paper"))
    # 2 modes x 2 machines x 3 efficiencies x 6 subdomain counts.
    assert len(points) == 72
    burst = [p.burst_bandwidth_bytes for p in points]
    # Paper extremes: easiest ~3 MB/s burst; hardest ~600 MB/s.
    assert min(burst) == pytest.approx(3.6e6, rel=0.05)
    assert max(burst) == pytest.approx(559e6, rel=0.05)
    hard_4w = [
        p
        for p in points
        if p.mode == "4-word"
        and p.efficiency == 0.9
        and p.machine == "future-200MFLOPS"
        and p.label == "sf2/128"
    ][0]
    assert hard_4w.half_tl == pytest.approx(57e-9, rel=0.05)  # "~70 ns"
