"""Section 2.1 bench: the 1.2 KB/node memory rule."""

from repro import paperdata
from repro.fem.memory import memory_model
from repro.tables.sec2_memory import compute_memory_rows, table_sec2_memory


def test_sec2_memory(benchmark, emit):
    sizes = paperdata.MESH_SIZES["sf2"]

    mm = benchmark.pedantic(
        lambda: memory_model(sizes["nodes"], sizes["edges"], sizes["elements"]),
        rounds=3,
        iterations=1,
    )
    emit("sec2_memory", table_sec2_memory())
    # Structural model applied to the paper's sf2 counts lands near the
    # paper's "about 450 MBytes".
    assert 300 < mm.mbytes < 600
    for row in compute_memory_rows():
        if row.model is not None:
            ratio = row.model.bytes_per_node / paperdata.MEMORY_BYTES_PER_NODE
            assert 0.5 < ratio < 1.5, row.instance
