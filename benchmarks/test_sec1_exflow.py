"""Section 1 bench: EXFLOW vs Quake communication-character table.

When sf2e is gated off, the measured column shows "(gated)" but the
bench still verifies our formulas recover the paper's published Quake
row from the published Figure 7 data.
"""

import pytest

from repro import paperdata
from repro.mesh.instances import INSTANCES
from repro.tables.sec1_exflow import compute_exflow_comparison, table_sec1_exflow


def test_sec1_exflow(benchmark, emit):
    cmp = benchmark.pedantic(compute_exflow_comparison, rounds=1, iterations=1)
    emit("sec1_exflow", table_sec1_exflow())
    props = paperdata.SMVP_PROPERTIES[("sf2", 128)]
    mflops = props.F / 1e6
    assert 8 * props.C_max / 1024 / mflops == pytest.approx(155, rel=0.05)
    assert props.B_max / mflops == pytest.approx(60, rel=0.02)
    if cmp.measured is not None:  # REPRO_LARGE=1
        assert 50 < cmp.measured.comm_kbytes_per_mflop < 400
        assert 20 < cmp.measured.messages_per_mflop < 150
