"""Sanitizer overhead bench: the REPRO_SAN-off hot path must stay free.

With the sanitizer off, ``multiply`` pays one ``is None`` test per
superstep — nanoseconds against a ~millisecond superstep.  This bench
times the 8-PE sf10e instance three ways — a manually inlined phase
sequence that bypasses the wrapper entirely (the seed-executor
equivalent), the sanitizer-off ``multiply``, and the sanitizer-on
(tracked-array) path — and asserts the off-path median stays within
1.1x of the bypass.  The sanitizer-on ratio is recorded but not
gated: tracked views are a diagnostic mode, not a production path.
Results land in ``benchmarks/output/BENCH_sanitizer.json``.
"""

import json
from pathlib import Path
from statistics import median

import numpy as np

from repro.fem.material import materials_from_model
from repro.mesh.instances import get_instance
from repro.partition.base import partition_mesh
from repro.smvp.executor import DistributedSMVP
from repro.util.clock import now

OUTPUT_DIR = Path(__file__).parent / "output"

INSTANCE = "sf10e"
PES = 8
REPS = 9

#: Allowed ratio of the sanitizer-off median over the bypass median.
MAX_DISABLED_OVERHEAD = 1.1


def _median_time(fn, x):
    fn(x)  # warmup
    samples = []
    for _ in range(REPS):
        t0 = now()
        fn(x)
        samples.append(now() - t0)
    return median(samples)


def _bypass_multiply(smvp):
    """The superstep with no sanitizer (or telemetry) wrapper at all."""

    def run(x):
        x_locals = smvp.scatter(x)
        y_locals = smvp.backend.compute(x_locals)
        y_locals, _record = smvp.communication_phase(y_locals)
        return smvp.gather(y_locals)

    return run


def test_disabled_sanitizer_is_free():
    inst = get_instance(INSTANCE)
    mesh, _ = inst.build()
    materials = materials_from_model(mesh, inst.model())
    partition = partition_mesh(mesh, PES, seed=0)
    x = np.random.default_rng(0).standard_normal(3 * mesh.num_nodes)

    with DistributedSMVP(
        mesh, partition, materials, sanitizer=False
    ) as smvp:
        assert smvp.sanitizer is None
        t_bypass = _median_time(_bypass_multiply(smvp), x)
        t_disabled = _median_time(smvp.multiply, x)
        y_plain = smvp.multiply(x)

    with DistributedSMVP(
        mesh, partition, materials, sanitizer=True
    ) as sanitized:
        t_enabled = _median_time(sanitized.multiply, x)
        y_tracked = sanitized.multiply(x)
        findings = len(sanitized.sanitizer.findings)

    ratio = t_disabled / t_bypass
    payload = {
        "instance": INSTANCE,
        "pes": PES,
        "repetitions": REPS,
        "t_bypass_s": t_bypass,
        "t_disabled_s": t_disabled,
        "t_enabled_s": t_enabled,
        "disabled_over_bypass": ratio,
        "enabled_over_bypass": t_enabled / t_bypass,
        "clean_run_findings": findings,
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "BENCH_sanitizer.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    # The sanitizer must never change the numbers, on or off — and a
    # clean engine must stay clean under tracking.
    assert np.array_equal(y_plain, y_tracked)
    assert findings == 0
    assert ratio < MAX_DISABLED_OVERHEAD, (
        f"sanitizer-off multiply is {ratio:.2f}x the bypass path "
        f"({t_disabled:.3e}s vs {t_bypass:.3e}s)"
    )
