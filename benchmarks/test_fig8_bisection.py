"""Figure 8 bench: required sustained bisection bandwidth."""

from repro.tables.fig8 import compute_fig8, table_fig8


def test_fig8_bisection(benchmark, emit):
    rows = benchmark.pedantic(compute_fig8, rounds=2, iterations=1)
    emit("fig8_bisection", table_fig8())
    assert len(rows) == 2 * 3 * 6  # machines x efficiencies x p
    worst = max(r.mbytes_per_second for r in rows)
    # The paper's conclusion: the bisection is never the exotic part —
    # worst case on the order of one to a few fast links.
    assert worst < 4000.0
