"""Sections 3.3-3.4 bench: model vs simulated execution.

Runs the barrier-mode BSP simulator across PE counts on T3E constants
and verifies the Equation (2) prediction stays within [1, beta] of the
simulated communication phase everywhere.
"""

from repro.model.machine import CRAY_T3E
from repro.partition.base import partition_mesh
from repro.mesh.instances import get_instance
from repro.simulate import BspSimulator
from repro.smvp.distribution import DataDistribution
from repro.smvp.schedule import CommSchedule
from repro.tables.validation import compute_validation, table_validation


def test_model_vs_simulation(benchmark, emit):
    mesh, _ = get_instance("sf10e").build()
    partition = partition_mesh(mesh, 64)
    dist = DataDistribution(mesh, partition)
    schedule = CommSchedule(dist)
    flops = dist.local_counts["flops"]
    sim = BspSimulator(flops, schedule, CRAY_T3E)

    times = benchmark(lambda: sim.run("barrier"))
    assert times.t_smvp > 0
    emit("model_vs_simulation", table_validation())
    for row in compute_validation():
        assert row.validation.model_holds, (row.instance, row.num_parts)


def test_skewed_execution(benchmark):
    """The no-barrier event simulation, benchmarked separately (it is
    the only non-vectorized mode)."""
    mesh, _ = get_instance("sf10e").build()
    partition = partition_mesh(mesh, 64)
    dist = DataDistribution(mesh, partition)
    schedule = CommSchedule(dist)
    sim = BspSimulator(dist.local_counts["flops"], schedule, CRAY_T3E)
    times = benchmark.pedantic(lambda: sim.run("skewed"), rounds=3, iterations=1)
    assert times.t_smvp > 0
