"""Extension bench: whole-application runtime predictions.

Forward use of Equations (1)+(2): predicted efficiency and full-run
(6000-step) times for every published application on the Cray T3E and
on a 200-MFLOP machine with the Figure 11 balanced network.
"""

import pytest

from repro.model.application import predict_application
from repro.model.inputs import ModelInputs
from repro.model.machine import CRAY_T3E
from repro.tables.prediction import (
    balanced_future_machine,
    compute_predictions,
    table_prediction,
)


def test_prediction(benchmark, emit):
    rows = benchmark.pedantic(compute_predictions, rounds=3, iterations=1)
    emit("prediction", table_prediction())
    assert len(rows) == 16
    # The designed network achieves its design point exactly.
    designed = [
        r
        for r in rows
        if r.machine == "future+balanced-net" and r.label == "sf2/128"
    ][0]
    assert designed.efficiency == pytest.approx(0.9, abs=1e-9)
    # Bigger problems always run more efficiently on a fixed machine.
    t3e = {r.label: r.efficiency for r in rows if r.machine == "Cray T3E"}
    assert t3e["sf10/128"] < t3e["sf5/128"] < t3e["sf2/128"] < t3e["sf1/128"]
    # Sanity on absolute scale: sf1/128 on the T3E takes minutes-to-
    # hours per simulated minute, not seconds or days.
    sf1 = [r for r in rows if r.machine == "Cray T3E" and r.label == "sf1/128"][0]
    assert 60 < sf1.total_seconds < 24 * 3600
