"""Figure 7 bench: regenerate the SMVP properties table.

The benchmarked unit is the statistics pipeline (partition ->
distribution -> schedule -> per-PE counts) at sf10e/128.
"""

from repro import paperdata
from repro.mesh.instances import get_instance
from repro.stats import smvp_statistics
from repro.tables.fig7 import compute_fig7, table_fig7


def test_fig7_properties(benchmark, emit):
    mesh, _ = get_instance("sf10e").build()

    stats = benchmark.pedantic(
        lambda: smvp_statistics(mesh, num_parts=128), rounds=2, iterations=1
    )
    assert stats.c_max % 6 == 0
    emit("fig7_properties", table_fig7())
    # Shape assertion: every measured cell within a modest band of the
    # paper's published value.
    for row in compute_fig7():
        if row.measured is None:
            continue
        assert 0.5 < row.measured.F / row.paper.F < 2.0, (row.instance, row.num_parts)
        assert 0.5 < row.measured.c_max / row.paper.C_max < 2.0
        assert 0.3 < row.measured.b_max / row.paper.B_max < 3.0
