"""Figure 6 bench: regenerate the beta error-bound table."""

from repro.mesh.instances import get_instance
from repro.stats import smvp_statistics
from repro.tables.fig6 import compute_betas, table_fig6


def test_fig6_beta(benchmark, emit):
    mesh, _ = get_instance("sf10e").build()

    def beta_at_32():
        return smvp_statistics(mesh, num_parts=32).beta

    beta = benchmark.pedantic(beta_at_32, rounds=2, iterations=1)
    assert 1.0 <= beta <= 2.0
    emit("fig6_beta", table_fig6())
    betas = [b for b in compute_betas().values() if b is not None]
    # The paper's observation: beta stays close to 1 in practice.
    assert max(betas) < 1.3
