"""Per-backend telemetry snapshot: traffic counters next to T_f.

Runs the 8-PE sf10e superstep under an installed registry once per
execution backend (clean) plus one fault-injected serial run, and
archives the registry's view — words/blocks per PE, retransmit counts,
T_f — under ``benchmarks/output/BENCH_telemetry.json``.  The counters
must agree exactly with the executor's own trace records, and the
clean-path traffic must be identical across backends.
"""

import json
from pathlib import Path

import numpy as np

from repro.faults import FaultConfig, FaultInjector
from repro.fem.material import materials_from_model
from repro.mesh.instances import get_instance
from repro.partition.base import partition_mesh
from repro.smvp.backends import backend_names
from repro.smvp.executor import DistributedSMVP
from repro.smvp.trace import TraceLog
from repro.telemetry import MetricsRegistry, use_registry
from repro.util.clock import now

OUTPUT_DIR = Path(__file__).parent / "output"

INSTANCE = "sf10e"
PES = 8
STEPS = 3


def _run(mesh, materials, partition, x, backend, injector=None):
    registry = MetricsRegistry()
    log = TraceLog()
    with use_registry(registry):
        with DistributedSMVP(
            mesh,
            partition,
            materials,
            backend=backend,
            injector=injector,
            trace_sink=log,
        ) as smvp:
            flops = int(smvp.flops_per_pe().sum())
            t0 = now()
            for _ in range(STEPS):
                smvp.multiply(x)
            elapsed = (now() - t0) / STEPS

    words = registry.counter("repro_exchange_words_total")
    blocks = registry.counter("repro_exchange_blocks_total")
    faults = registry.counter("repro_fault_events_total")
    record = {
        "flops_per_smvp": flops,
        "t_smvp_s": elapsed,
        "tf_ns": 1e9 * elapsed / flops,
        "words_per_pe": {
            str(pe): int(words.value(pe=pe)) for pe in range(PES)
        },
        "blocks_per_pe": {
            str(pe): int(blocks.value(pe=pe)) for pe in range(PES)
        },
        "words_total": int(words.total),
        "blocks_total": int(blocks.total),
        "retransmits": int(
            faults.value(kind="retransmits", component="exchange")
        ),
        "words_retransmitted": int(
            faults.value(kind="words_retransmitted", component="exchange")
        ),
    }
    # The registry's totals must match the executor's own traces.
    assert record["words_total"] == sum(t.total_words for t in log.traces)
    assert record["blocks_total"] == sum(t.total_blocks for t in log.traces)
    return record


def test_telemetry_snapshot_per_backend():
    inst = get_instance(INSTANCE)
    mesh, _ = inst.build()
    materials = materials_from_model(mesh, inst.model())
    partition = partition_mesh(mesh, PES, seed=0)
    x = np.random.default_rng(0).standard_normal(3 * mesh.num_nodes)

    results = {}
    for backend in sorted(backend_names()):
        results[backend] = _run(mesh, materials, partition, x, backend)

    injector = FaultInjector(
        FaultConfig(seed=11, drop_rate=0.05, bitflip_rate=0.05)
    )
    faulty = _run(
        mesh, materials, partition, x, "serial", injector=injector
    )

    payload = {
        "instance": INSTANCE,
        "pes": PES,
        "steps": STEPS,
        "backends": results,
        "faulty_serial": faulty,
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "BENCH_telemetry.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    # Clean-path traffic is a pure function of the schedule: identical
    # across backends, zero retransmits.
    serial = results["serial"]
    for backend, record in results.items():
        assert record["words_per_pe"] == serial["words_per_pe"], backend
        assert record["blocks_per_pe"] == serial["blocks_per_pe"], backend
        assert record["retransmits"] == 0
    # The faulty run must actually have exercised the recovery path.
    assert faulty["retransmits"] > 0
    assert faulty["words_total"] > serial["words_total"]
    assert faulty["words_retransmitted"] > 0
