"""Execution-backend smoke bench: threaded vs serial superstep engine.

Times the compute phase and the full superstep for each execution
backend on the 8-PE sf10e instance and archives per-backend T_f and
superstep times under ``benchmarks/output/BENCH_engine.json``.  The
backends must agree bit for bit everywhere; the threaded compute phase
must actually beat serial only on hosts with more than one core (a
single-core container cannot honestly speed anything up, but it still
records the measurement).
"""

import json
import os
from pathlib import Path

import numpy as np

from repro.fem.material import materials_from_model
from repro.mesh.instances import get_instance
from repro.partition.base import partition_mesh
from repro.smvp.backends import backend_names
from repro.smvp.executor import DistributedSMVP
from repro.util.clock import now

OUTPUT_DIR = Path(__file__).parent / "output"

INSTANCE = "sf10e"
PES = 8
REPS = 3


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _time_backend(mesh, materials, partition, x, backend):
    with DistributedSMVP(
        mesh, partition, materials, backend=backend
    ) as ds:
        x_locals = ds.scatter(x)
        flops = int(ds.flops_per_pe().sum())
        ds.compute_phase(x_locals)  # warmup (spins up any pool)
        t0 = now()
        for _ in range(REPS):
            ds.compute_phase(x_locals)
        t_comp = (now() - t0) / REPS
        ds.multiply(x)
        t0 = now()
        for _ in range(REPS):
            ds.multiply(x)
        t_smvp = (now() - t0) / REPS
        y = ds.multiply(x)
    record = {
        "t_comp_s": t_comp,
        "t_smvp_s": t_smvp,
        "tf_ns": 1e9 * t_comp / flops,
        "flops_per_smvp": flops,
    }
    return record, y


def test_engine_backend_smoke():
    inst = get_instance(INSTANCE)
    mesh, _ = inst.build()
    materials = materials_from_model(mesh, inst.model())
    partition = partition_mesh(mesh, PES, seed=0)
    x = np.random.default_rng(0).standard_normal(3 * mesh.num_nodes)

    results = {}
    ys = {}
    for backend in sorted(backend_names()):
        results[backend], ys[backend] = _time_backend(
            mesh, materials, partition, x, backend
        )

    cores = _cores()
    speedup = results["serial"]["t_comp_s"] / results["threaded"]["t_comp_s"]
    payload = {
        "instance": INSTANCE,
        "pes": PES,
        "repetitions": REPS,
        "cores": cores,
        "backends": results,
        "threaded_compute_speedup": speedup,
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "BENCH_engine.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    for backend in sorted(backend_names()):
        assert np.array_equal(ys[backend], ys["serial"])
    if cores > 1:
        # Scipy's matvec releases the GIL, so with real cores the
        # thread pool must win the compute phase.
        assert speedup > 1.0, f"threaded speedup {speedup:.2f}x on {cores} cores"
