"""Benchmark harness plumbing.

Every benchmark regenerates one of the paper's tables or figures.  The
rendered table is printed (run with ``-s`` to see it live) and archived
under ``benchmarks/output/`` so ``bench_output.txt`` plus the artifacts
form a complete reproduction record.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture()
def emit(capsys):
    """Print a table and archive it under benchmarks/output/<name>.txt."""

    def _emit(name: str, *tables) -> None:
        OUTPUT_DIR.mkdir(exist_ok=True)
        text = "\n\n".join(str(t) for t in tables) + "\n"
        with capsys.disabled():
            print()  # repro-lint: ignore[no-print]
            print(text)  # repro-lint: ignore[no-print]
        (OUTPUT_DIR / f"{name}.txt").write_text(text)

    return _emit


@pytest.fixture(scope="session", autouse=True)
def _warm_instances():
    """Build the always-enabled instances once up front so per-bench
    timings measure the statistics computation, not mesh construction."""
    from repro.mesh.instances import INSTANCES, instance_names

    for name in instance_names(enabled_only=True):
        INSTANCES[name].build()
