"""Figure 2 bench: regenerate the mesh-size table.

Benchmarks the full mesh-generation pipeline at sf10e scale and prints
measured-vs-paper sizes for every enabled instance.
"""

from repro.mesh.generator import generate_mesh
from repro.mesh.instances import INSTANCES
from repro.tables.fig2 import compute_mesh_sizes, table_fig2


def test_fig2_mesh_sizes(benchmark, emit):
    inst = INSTANCES["sf10e"]

    def build():
        return generate_mesh(
            inst.model(),
            period=inst.period,
            points_per_wavelength=inst.points_per_wavelength,
            seed=inst.seed,
        )

    mesh, _report = benchmark.pedantic(build, rounds=2, iterations=1)
    emit("fig2_mesh_sizes", table_fig2())
    rows = compute_mesh_sizes()
    for row in rows:
        if row.nodes is not None:
            assert 0.7 < row.node_ratio < 1.3, row.instance
