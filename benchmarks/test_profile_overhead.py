"""Profiler overhead smoke: profile-off must stay (nearly) free.

The profiler's disabled cost on the hot path is one ``is None`` test
per phase — ``profile=False`` executors never construct a recorder and
never read extra clocks.  This bench times ``multiply`` on the 8-PE
sf10e instance three ways — a manually inlined phase sequence that
bypasses the instrumented wrapper (the pre-instrumentation
equivalent), the profile-off executor, and the profile-on executor
with a trace sink attached — and gates the profile-off median at
``MAX_OFF_OVERHEAD`` over the bypass.  Results (including the
profile-on blame buckets) are archived under
``benchmarks/output/BENCH_profile.json``.
"""

import json
from pathlib import Path
from statistics import median

import numpy as np

from repro.fem.material import materials_from_model
from repro.mesh.instances import get_instance
from repro.partition.base import partition_mesh
from repro.profile import build_report
from repro.smvp.executor import DistributedSMVP
from repro.smvp.trace import TraceLog
from repro.util.clock import now

OUTPUT_DIR = Path(__file__).parent / "output"

INSTANCE = "sf10e"
PES = 8
REPS = 9

#: Allowed ratio of the profile-off median over the bypass median.
#: The acceptance bound: disabled profiling may cost at most 10%.
MAX_OFF_OVERHEAD = 1.1


def _median_time(fn, x):
    fn(x)  # warmup
    samples = []
    for _ in range(REPS):
        t0 = now()
        fn(x)
        samples.append(now() - t0)
    return median(samples)


def _bypass_multiply(smvp):
    """The superstep with no instrumentation wrapper at all."""

    def run(x):
        x_locals = smvp.scatter(x)
        y_locals = smvp.backend.compute(x_locals)
        y_locals, _record = smvp.communication_phase(y_locals)
        return smvp.gather(y_locals)

    return run


def test_profile_off_overhead_is_bounded():
    inst = get_instance(INSTANCE)
    mesh, _ = inst.build()
    materials = materials_from_model(mesh, inst.model())
    partition = partition_mesh(mesh, PES, seed=0)
    x = np.random.default_rng(0).standard_normal(3 * mesh.num_nodes)

    with DistributedSMVP(mesh, partition, materials) as smvp_off:
        t_bypass = _median_time(_bypass_multiply(smvp_off), x)
        t_off = _median_time(smvp_off.multiply, x)
        y_off = smvp_off.multiply(x)

    log = TraceLog()
    with DistributedSMVP(
        mesh, partition, materials, trace_sink=log, profile=True
    ) as smvp_on:
        t_on = _median_time(smvp_on.multiply, x)
        y_on = smvp_on.multiply(x)

    report = build_report(log)
    ratio = t_off / t_bypass
    payload = {
        "instance": INSTANCE,
        "pes": PES,
        "repetitions": REPS,
        "t_bypass_s": t_bypass,
        "t_profile_off_s": t_off,
        "t_profile_on_s": t_on,
        "off_over_bypass": ratio,
        "on_over_bypass": t_on / t_bypass,
        "buckets": dict(report.buckets),
        "identity_max_err": report.identity_max_err,
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "BENCH_profile.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    # Profiling must never change the numbers, on or off.
    assert np.array_equal(y_off, y_on)
    assert report.identity_max_err <= 1e-9
    assert ratio < MAX_OFF_OVERHEAD, (
        f"profile-off multiply is {ratio:.3f}x the bypass path "
        f"({t_off:.3e}s vs {t_bypass:.3e}s)"
    )
