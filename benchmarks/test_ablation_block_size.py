"""Ablation bench: block granularity.

Sweeps Equation (2) over fixed block sizes between a cache line and
maximal aggregation, on the paper's sf2/128 row — quantifying exactly
how much latency tolerance aggregation buys (the paper only shows the
two endpoints in Figure 10).
"""

import pytest

from repro.model import FUTURE_200MFLOPS, ModelInputs
from repro.model.lowlevel import (
    MAXIMAL_BLOCKS,
    BlockMode,
    fixed_blocks,
    latency_for_tradeoff,
)
from repro.tables.render import Table

BLOCK_WORDS = (4, 8, 16, 32, 64, 128, 256)


def test_ablation_block_size(benchmark, emit):
    inputs = ModelInputs.from_paper("sf2", 128)

    def sweep():
        out = {}
        for words in BLOCK_WORDS:
            out[words] = latency_for_tradeoff(
                inputs, 0.9, FUTURE_200MFLOPS, 0.0, fixed_blocks(words)
            )
        out["maximal"] = latency_for_tradeoff(
            inputs, 0.9, FUTURE_200MFLOPS, 0.0, MAXIMAL_BLOCKS
        )
        return out

    latencies = benchmark.pedantic(sweep, rounds=3, iterations=1)

    table = Table(
        title="Ablation: tolerable block latency vs block size "
        "(sf2/128, 200 MFLOPS, E=0.9, infinite burst bandwidth)",
        headers=["block size (words)", "max latency (ns)", "vs 4-word"],
    )
    base = latencies[4]
    for words in BLOCK_WORDS:
        table.add_row(
            words,
            round(latencies[words] * 1e9, 1),
            f"{latencies[words] / base:.1f}x",
        )
    table.add_row(
        "maximal (C_max/B_max ~ 325)",
        round(latencies["maximal"] * 1e9, 1),
        f"{latencies['maximal'] / base:.1f}x",
    )
    table.add_note(
        "latency tolerance scales linearly with block size; aggregation "
        "is the only latency-hiding lever Equation (2) offers"
    )
    emit("ablation_block_size", table)

    # Linear-in-block-size property, and the paper's two endpoints.
    assert latencies[8] == pytest.approx(2 * latencies[4], rel=1e-9)
    assert latencies[4] == pytest.approx(115e-9, rel=0.02)
    assert latencies["maximal"] == pytest.approx(9.3e-6, rel=0.02)


def test_ablation_blocks_per_neighbor(emit):
    """The documented reading of the paper's prose discrepancy: if each
    degree of freedom travelled as its own message (3 blocks per
    neighbor), the prose numbers of Figure 10(a)/11 come out exactly."""
    inputs = ModelInputs.from_paper("sf2", 128)
    table = Table(
        title="Ablation: blocks per neighbor (sf2/128, 200 MFLOPS, E=0.9)",
        headers=["blocks/neighbor", "max latency at inf burst (us)"],
    )
    for k in (1, 2, 3, 4):
        mode = BlockMode(name=f"{k}x", blocks_per_neighbor=k)
        tl = latency_for_tradeoff(inputs, 0.9, FUTURE_200MFLOPS, 0.0, mode)
        table.add_row(k, round(tl * 1e6, 2))
    table.add_note("k=3 reproduces the paper's prose '3 us'; see DESIGN.md")
    emit("ablation_blocks_per_neighbor", table)
    mode3 = BlockMode(name="3x", blocks_per_neighbor=3)
    tl3 = latency_for_tradeoff(inputs, 0.9, FUTURE_200MFLOPS, 0.0, mode3)
    assert tl3 == pytest.approx(3.1e-6, rel=0.02)
