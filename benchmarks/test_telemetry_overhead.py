"""Telemetry overhead smoke: the no-registry hot path must stay free.

The instrumented executor's disabled-telemetry cost is one module-level
global load plus an ``is None`` test per superstep (and per compute
phase).  This bench times ``multiply`` on the 8-PE sf10e instance three
ways — no registry, a manually inlined phase sequence that bypasses
the instrumented ``multiply`` wrapper entirely (the pre-instrumentation
equivalent), and with a registry installed — and asserts the
no-registry median stays within noise of the bypass path.  Results are
archived under ``benchmarks/output/BENCH_telemetry_overhead.json``.
"""

import json
from pathlib import Path
from statistics import median

import numpy as np

from repro.fem.material import materials_from_model
from repro.mesh.instances import get_instance
from repro.partition.base import partition_mesh
from repro.smvp.executor import DistributedSMVP
from repro.telemetry import MetricsRegistry, use_registry
from repro.util.clock import now

OUTPUT_DIR = Path(__file__).parent / "output"

INSTANCE = "sf10e"
PES = 8
REPS = 7

#: Allowed ratio of the no-registry median over the bypass median.  The
#: real overhead is nanoseconds against a ~millisecond superstep; 1.5x
#: absorbs scheduler noise on busy CI hosts without hiding a regression
#: that moved real work onto the disabled path.
MAX_DISABLED_OVERHEAD = 1.5


def _median_time(fn, x):
    fn(x)  # warmup
    samples = []
    for _ in range(REPS):
        t0 = now()
        fn(x)
        samples.append(now() - t0)
    return median(samples)


def _bypass_multiply(smvp):
    """The superstep with no instrumentation wrapper at all."""

    def run(x):
        x_locals = smvp.scatter(x)
        y_locals = smvp.backend.compute(x_locals)
        y_locals, _record = smvp.communication_phase(y_locals)
        return smvp.gather(y_locals)

    return run


def test_disabled_telemetry_is_free():
    inst = get_instance(INSTANCE)
    mesh, _ = inst.build()
    materials = materials_from_model(mesh, inst.model())
    partition = partition_mesh(mesh, PES, seed=0)
    x = np.random.default_rng(0).standard_normal(3 * mesh.num_nodes)

    with DistributedSMVP(mesh, partition, materials) as smvp:
        t_bypass = _median_time(_bypass_multiply(smvp), x)
        t_disabled = _median_time(smvp.multiply, x)
        with use_registry(MetricsRegistry()):
            t_enabled = _median_time(smvp.multiply, x)
        y_plain = smvp.multiply(x)
        with use_registry(MetricsRegistry()):
            y_metered = smvp.multiply(x)

    ratio = t_disabled / t_bypass
    payload = {
        "instance": INSTANCE,
        "pes": PES,
        "repetitions": REPS,
        "t_bypass_s": t_bypass,
        "t_disabled_s": t_disabled,
        "t_enabled_s": t_enabled,
        "disabled_over_bypass": ratio,
        "enabled_over_bypass": t_enabled / t_bypass,
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "BENCH_telemetry_overhead.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    # Telemetry must never change the numbers, on or off.
    assert np.array_equal(y_plain, y_metered)
    assert ratio < MAX_DISABLED_OVERHEAD, (
        f"disabled-telemetry multiply is {ratio:.2f}x the bypass path "
        f"({t_disabled:.3e}s vs {t_bypass:.3e}s)"
    )
