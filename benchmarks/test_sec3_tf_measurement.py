"""Section 3.1 bench: measure T_f for the local SMVP on this host.

This is the bench where pytest-benchmark earns its keep: the local
SMVP kernels are timed properly (multiple rounds), and the resulting
T_f values populate the Section 3.1 table next to the paper's Cray
measurements.
"""

import numpy as np
import pytest

from repro.fem.assembly import assemble_stiffness
from repro.fem.material import materials_from_model
from repro.mesh.instances import get_instance
from repro.smvp.kernels import get_kernel
from repro.tables.sec3_tf import table_sec3_tf


@pytest.fixture(scope="module")
def matrices():
    inst = get_instance("sf10e")
    mesh, _ = inst.build()
    materials = materials_from_model(mesh, inst.model())
    csr = assemble_stiffness(mesh, materials, fmt="csr")
    bsr = assemble_stiffness(mesh, materials, fmt="bsr")
    rng = np.random.default_rng(0)
    x = rng.standard_normal(csr.shape[1])
    return csr, bsr, x


@pytest.mark.parametrize("kernel", ["csr", "bsr3x3", "symmetric-upper"])
def test_local_smvp_kernel(benchmark, matrices, kernel):
    csr, bsr, x = matrices
    matrix = bsr if kernel == "bsr3x3" else csr
    k = get_kernel(kernel)
    state = k.prepare(matrix)  # conversion stays outside the timed region
    y = benchmark(k.apply, state, x)
    assert np.allclose(y, csr @ x)
    flops = 2 * csr.nnz
    tf_ns = 1e9 * benchmark.stats["mean"] / flops
    # Interpreted overhead aside, a modern host should land somewhere
    # between "faster than a T3E" and "not absurdly slow".
    assert 0.01 < tf_ns < 1000.0


def test_sec3_tf_table(emit):
    emit("sec3_tf", table_sec3_tf())
